// Observability tests: TraceSink determinism and drop accounting, the
// flight recorder's ring/dump mechanics and its Execution::validate hook,
// the Prometheus/JSON metric exporters (timing.* convention included), and
// MetricsRegistry edge cases (windowed-histogram eviction at the boundary,
// erasing live metrics, snapshot byte-identity across planner threading).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bmp/dataplane/execution.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/flight_recorder.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/metrics.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------- TraceSink

TEST(TraceSink, CountsSpansAndInstantsSeparately) {
  obs::TraceSink sink;
  sink.set_clock(1.5);
  sink.complete(obs::Lane::kPlanner, "engine", "plan", {{"n", 10}});
  sink.instant(obs::Lane::kControl, "control", "demote",
               {{"node", 3}, {"ewma", 0.7}});
  sink.complete_at(obs::Lane::kExecution, "dataplane", "stream_end", 2.0, 0.0);
  EXPECT_EQ(sink.events(), 3u);
  EXPECT_EQ(sink.spans(), 2u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, JsonIsWellFormedAndCarriesSequenceNumbers) {
  obs::TraceSink sink;
  sink.set_clock(0.25);
  sink.complete(obs::Lane::kVerify, "flow", "verify",
                {{"tier", "sweep"}, {"throughput", 3.25}, {"ok", true}});
  sink.instant(obs::Lane::kBroker, "runtime", "admit", {{"channel", 0}});
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Lane metadata names the tracks; both events carry their append seq.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  // Sim time 0.25 s renders as 250000 microseconds.
  EXPECT_NE(json.find("\"ts\":250000.000"), std::string::npos);
  // Instants need a scope to render in Perfetto.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // No wall_us unless opted in.
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
}

TEST(TraceSink, DropsPastCapacityInsteadOfGrowing) {
  obs::TraceConfig config;
  config.max_events = 4;
  obs::TraceSink sink(config);
  for (int i = 0; i < 10; ++i) {
    sink.instant(obs::Lane::kRuntime, "runtime", "event", {{"i", i}});
  }
  EXPECT_EQ(sink.events(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"dropped\":6"), std::string::npos);
}

TEST(TraceSink, PlanBatchTraceByteIdenticalAcrossThreadCounts) {
  // The determinism contract on the planner pool: per-item spans are
  // emitted post-barrier in work-item order, so 1 worker and 4 workers
  // serialize to the same bytes.
  util::Xoshiro256 rng(17);
  std::vector<engine::PlanRequest> stream;
  for (int r = 0; r < 12; ++r) {
    util::Xoshiro256 fork = rng.fork(static_cast<std::uint64_t>(r % 4));
    stream.push_back(engine::PlanRequest{
        testing::random_instance(fork, 8, 4), engine::Algorithm::kAuto, 0});
  }
  std::vector<std::string> traces;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::TraceSink sink;
    engine::PlannerConfig config;
    config.threads = threads;
    config.trace = &sink;
    engine::Planner planner(config);
    planner.plan_batch(stream);
    // One batch span + one per *distinct* computation (the batch dedupes
    // the 12 requests down to 4 platforms).
    EXPECT_EQ(sink.spans(), 5u);
    traces.push_back(sink.to_json());
  }
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(TraceSink, WallDurationsOptInBreaksNothingButAddsArg) {
  obs::TraceConfig config;
  config.wall_durations = true;
  obs::TraceSink sink(config);
  engine::PlannerConfig planner_config;
  planner_config.trace = &sink;
  engine::Planner planner(planner_config);
  planner.plan(testing::fig1_instance(), engine::Algorithm::kAcyclic, 0);
  EXPECT_EQ(sink.spans(), 1u);
  EXPECT_NE(sink.to_json().find("\"wall_us\":"), std::string::npos);
}

// ----------------------------------------------------------- FlightRecorder

TEST(FlightRecorder, RingEvictsOldestPerChannel) {
  obs::FlightRecorderConfig config;
  config.per_channel = 3;
  obs::FlightRecorder recorder(config);
  for (int i = 0; i < 5; ++i) {
    recorder.record(0.1 * i, /*channel=*/0, "event", std::to_string(i));
  }
  recorder.record(9.0, /*channel=*/1, "event", "other-lane");
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.evicted(), 2u);
  const std::vector<obs::FlightEvent> lane = recorder.channel_events(0);
  ASSERT_EQ(lane.size(), 3u);
  EXPECT_EQ(lane.front().detail, "2");  // 0 and 1 evicted
  EXPECT_EQ(lane.back().detail, "4");
  EXPECT_EQ(recorder.channel_events(1).size(), 1u);
  EXPECT_TRUE(recorder.channel_events(7).empty());
}

TEST(FlightRecorder, RecordFailureDumpsToConfiguredPath) {
  const std::string path = ::testing::TempDir() + "bmp_fr_dump.json";
  std::remove(path.c_str());
  obs::FlightRecorderConfig config;
  config.dump_path = path;
  obs::FlightRecorder recorder(config);
  recorder.record(1.0, 0, "control", "demote node=3");
  EXPECT_TRUE(recorder.record_failure(2.0, 0, "Runtime::validate",
                                      {"node 3 oversubscribed"}));
  EXPECT_EQ(recorder.dumps(), 1);
  const std::string dumped = slurp(path);
  EXPECT_NE(dumped.find("\"failure\""), std::string::npos);
  EXPECT_NE(dumped.find("node 3 oversubscribed"), std::string::npos);
  EXPECT_NE(dumped.find("demote node=3"), std::string::npos);
  EXPECT_EQ(dumped, recorder.to_json());
  std::remove(path.c_str());
}

TEST(FlightRecorder, ExecutionValidateFailureAutoRecords) {
  // A busy pipe holds its rate; shrinking the sender's budget under it
  // makes validate() trip, which must auto-record into the recorder.
  obs::FlightRecorder recorder;
  dataplane::ExecutionConfig config;
  config.chunk_size = 1.0;
  config.total_chunks = 50;
  config.emission_rate = 0.0;  // file mode: backlog exists at t = 0
  config.warmup_chunks = 0;
  config.recorder = &recorder;
  config.trace_id = 42;
  dataplane::Execution exec(config);
  const int source = exec.add_node(10.0);
  const int leaf = exec.add_node(0.0);
  exec.set_edge(source, leaf, 10.0);
  exec.run_until(0.05);  // mid-transmission: the pipe is busy at rate 10
  EXPECT_TRUE(exec.validate().empty());
  exec.set_node_budget(source, 1.0);
  const std::vector<std::string> violations = exec.validate();
  ASSERT_FALSE(violations.empty());
  const std::vector<obs::FlightEvent> lane = recorder.channel_events(42);
  ASSERT_FALSE(lane.empty());
  EXPECT_EQ(lane.back().kind, "failure");
  EXPECT_NE(lane.back().detail.find("Execution::validate"),
            std::string::npos);
}

// -------------------------------------------------------- metrics exporters

runtime::MetricsRegistry sample_registry() {
  runtime::MetricsRegistry metrics;
  metrics.inc("events.seen", 3);
  metrics.set("channels.open", 2.0);
  metrics.observe("control.drift", 0.25);
  metrics.observe("control.drift", 0.75);
  metrics.observe("timing.event_loop_us", 123.0);
  metrics.inc("timing.fake_count");
  return metrics;
}

TEST(Exporters, PrometheusGolden) {
  const std::string text = obs::to_prometheus(sample_registry().snapshot());
  const std::string expected =
      "# TYPE bmp_events_seen_total counter\n"
      "bmp_events_seen_total 3\n"
      "# TYPE bmp_channels_open gauge\n"
      "bmp_channels_open 2\n"
      "# TYPE bmp_control_drift summary\n"
      "bmp_control_drift{quantile=\"0.5\"} 0.25\n"
      "bmp_control_drift{quantile=\"0.9\"} 0.75\n"
      "bmp_control_drift{quantile=\"0.99\"} 0.75\n"
      "bmp_control_drift_sum 1\n"
      "bmp_control_drift_count 2\n"
      "# TYPE bmp_control_drift_hist histogram\n"
      "bmp_control_drift_hist_bucket{le=\"0.005\"} 0\n"
      "bmp_control_drift_hist_bucket{le=\"0.01\"} 0\n"
      "bmp_control_drift_hist_bucket{le=\"0.025\"} 0\n"
      "bmp_control_drift_hist_bucket{le=\"0.05\"} 0\n"
      "bmp_control_drift_hist_bucket{le=\"0.1\"} 0\n"
      "bmp_control_drift_hist_bucket{le=\"0.25\"} 1\n"
      "bmp_control_drift_hist_bucket{le=\"0.5\"} 1\n"
      "bmp_control_drift_hist_bucket{le=\"1\"} 2\n"
      "bmp_control_drift_hist_bucket{le=\"2.5\"} 2\n"
      "bmp_control_drift_hist_bucket{le=\"5\"} 2\n"
      "bmp_control_drift_hist_bucket{le=\"10\"} 2\n"
      "bmp_control_drift_hist_bucket{le=\"25\"} 2\n"
      "bmp_control_drift_hist_bucket{le=\"50\"} 2\n"
      "bmp_control_drift_hist_bucket{le=\"100\"} 2\n"
      "bmp_control_drift_hist_bucket{le=\"+Inf\"} 2\n"
      "bmp_control_drift_hist_sum 1\n"
      "bmp_control_drift_hist_count 2\n";
  EXPECT_EQ(text, expected);
}

TEST(Exporters, JsonGoldenAndTimingConvention) {
  const runtime::MetricsSnapshot snap = sample_registry().snapshot();
  const std::string json = obs::to_json(snap);
  const std::string expected =
      "{\"counters\":{\"events.seen\":3},"
      "\"gauges\":{\"channels.open\":2},"
      "\"histograms\":{\"control.drift\":{\"count\":2,\"sum\":1,"
      "\"min\":0.25,\"max\":0.75,\"mean\":0.5,"
      "\"p50\":0.25,\"p90\":0.75,\"p99\":0.75}}}";
  EXPECT_EQ(json, expected);
  // The timing.* convention: excluded by default, included on request —
  // and both exporters route through MetricsRegistry::is_timing.
  EXPECT_EQ(json.find("timing"), std::string::npos);
  EXPECT_NE(obs::to_json(snap, true).find("timing.event_loop_us"),
            std::string::npos);
  EXPECT_NE(obs::to_prometheus(snap, true).find("bmp_timing_fake_count_total"),
            std::string::npos);
  static_assert(runtime::MetricsRegistry::is_timing("timing.x"));
  static_assert(!runtime::MetricsRegistry::is_timing("tim.x"));
}

// ------------------------------------------------------ metrics edge cases

TEST(Metrics, WindowedHistogramEvictsExactlyAtBoundary) {
  runtime::WindowedHistogram hist(4);
  for (int i = 1; i <= 4; ++i) hist.observe(i);
  EXPECT_EQ(hist.window_size(), 4u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 1.0);
  hist.observe(5.0);  // evicts 1 — the window is now {2, 3, 4, 5}
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.window_size(), 4u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 5.0);
  // Cumulative stats keep the evicted observation.
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.sum(), 15.0);
}

TEST(Metrics, EraseLiveHistogramThenReobserveStartsFresh) {
  runtime::MetricsRegistry metrics;
  metrics.observe("hist.x", 100.0);
  metrics.erase("hist.x");
  EXPECT_EQ(metrics.histogram("hist.x"), nullptr);
  metrics.observe("hist.x", 1.0);
  ASSERT_NE(metrics.histogram("hist.x"), nullptr);
  EXPECT_EQ(metrics.histogram("hist.x")->count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.histogram("hist.x")->max(), 1.0);
}

TEST(Metrics, ExportByteIdenticalAcrossPlannerThreadCounts) {
  // The exporters sit downstream of the registry's determinism contract;
  // drive a planner batch at different thread counts and require the
  // Prometheus and JSON forms (not just the snapshot) to match bytewise.
  util::Xoshiro256 rng(29);
  std::vector<engine::PlanRequest> stream;
  for (int r = 0; r < 10; ++r) {
    util::Xoshiro256 fork = rng.fork(static_cast<std::uint64_t>(r % 5));
    stream.push_back(engine::PlanRequest{
        testing::random_instance(fork, 9, 3), engine::Algorithm::kAuto, 0});
  }
  std::vector<std::string> exports;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    engine::PlannerConfig config;
    config.threads = threads;
    engine::Planner planner(config);
    const std::vector<engine::PlanResponse> responses =
        planner.plan_batch(stream);
    runtime::MetricsRegistry metrics;
    for (const engine::PlanResponse& response : responses) {
      metrics.inc(response.cache_hit ? "plan.hits" : "plan.misses");
      metrics.observe("plan.throughput", response.throughput);
    }
    exports.push_back(obs::to_prometheus(metrics.snapshot()) + "\n---\n" +
                      obs::to_json(metrics.snapshot()));
  }
  EXPECT_EQ(exports[0], exports[1]);
}

}  // namespace
}  // namespace bmp
