// Simplex + LP-throughput oracle tests. The headline checks: the LP
// confirms that the Lemma 5.1 closed form is the *achievable* optimal
// cyclic throughput, and that the combinatorial word throughput equals the
// LP optimum for the same order — the paper's two central quantities.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/bounds.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/lp/simplex.hpp"
#include "bmp/lp/throughput_lp.hpp"
#include "test_helpers.hpp"

namespace bmp::lp {
namespace {

TEST(Simplex, BasicMaximize) {
  LinearProgram lp;
  const int x = lp.add_variable(3.0);
  const int y = lp.add_variable(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kLe, 6.0);
  const Solution s = lp.solve();
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 4.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 0.0, 1e-9);
}

TEST(Simplex, BasicMinimizeWithGe) {
  LinearProgram lp;
  lp.set_maximize(false);
  const int x = lp.add_variable(2.0);
  const int y = lp.add_variable(3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 10.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 6.0);
  const Solution s = lp.solve();
  ASSERT_EQ(s.status, Status::kOptimal);
  // x = 6, y = 4 -> 12 + 12 = 24.
  EXPECT_NEAR(s.objective, 24.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kEq, 8.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 2.0);
  const Solution s = lp.solve();
  ASSERT_EQ(s.status, Status::kOptimal);
  // x = 2, y = 3 -> 5.
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 5.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  EXPECT_EQ(lp.solve().status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(0.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLe, 1.0);
  EXPECT_EQ(lp.solve().status, Status::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  LinearProgram lp;
  lp.set_maximize(false);
  const int x = lp.add_variable(1.0);
  // -x <= -3  <=>  x >= 3.
  lp.add_constraint({{x, -1.0}}, Relation::kLe, -3.0);
  const Solution s = lp.solve();
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Simplex, DegenerateBlandTerminates) {
  // Beale's classic cycling example (terminates under Bland's rule).
  LinearProgram lp;
  lp.set_maximize(true);
  const int x1 = lp.add_variable(0.75);
  const int x2 = lp.add_variable(-150.0);
  const int x3 = lp.add_variable(0.02);
  const int x4 = lp.add_variable(-6.0);
  lp.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                    Relation::kLe, 0.0);
  lp.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                    Relation::kLe, 0.0);
  lp.add_constraint({{x3, 1.0}}, Relation::kLe, 1.0);
  const Solution s = lp.solve();
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 0.05, 1e-9);
}

TEST(Simplex, RejectsUnknownVariable) {
  LinearProgram lp;
  lp.add_variable(1.0);
  EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Relation::kLe, 1.0),
               std::out_of_range);
}

TEST(ThroughputLp, Fig1CyclicOptimumIsClosedForm) {
  const Instance inst = bmp::testing::fig1_instance();
  const ThroughputLpResult r = cyclic_optimal_lp(inst);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.throughput, 4.4, 1e-7);
  EXPECT_TRUE(r.scheme.validate(inst).empty());
}

// The paper's "closed form formula for the optimal cyclic throughput":
// the LP optimum equals min(b0, (b0+O)/m, (b0+O+G)/(n+m)) on random
// instances — i.e. Lemma 5.1 is tight.
TEST(ThroughputLp, ClosedFormIsAchievableOnRandomInstances) {
  util::Xoshiro256 rng(404);
  for (int rep = 0; rep < 25; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(3));
    const int m = static_cast<int>(rng.below(4 - static_cast<std::uint64_t>(0)));
    const Instance inst = bmp::testing::random_instance(rng, n, std::min(m, 3));
    const ThroughputLpResult r = cyclic_optimal_lp(inst);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.throughput, cyclic_upper_bound(inst),
                1e-6 * std::max(1.0, r.throughput))
        << "n=" << inst.n() << " m=" << inst.m();
  }
}

TEST(ThroughputLp, OpenOnlyCyclicMatchesTheorem52Formula) {
  util::Xoshiro256 rng(405);
  for (int rep = 0; rep < 15; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(5));
    const Instance inst = bmp::testing::random_instance(rng, n, 0);
    const ThroughputLpResult r = cyclic_optimal_lp(inst);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.throughput, cyclic_open_optimal(inst),
                1e-6 * std::max(1.0, r.throughput));
  }
}

// T*_ac(σ) from the combinatorial closed form equals the LP optimum
// restricted to σ-forward edges: validates the conservative-solution
// machinery of §IV end to end.
TEST(ThroughputLp, WordThroughputMatchesOrderRestrictedLp) {
  util::Xoshiro256 rng(406);
  for (int rep = 0; rep < 20; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(3));
    const int m = static_cast<int>(rng.below(3));
    const Instance inst = bmp::testing::random_instance(rng, n, m);
    const auto words = enumerate_words(n, m);
    const Word& w = words[rng.below(words.size())];
    const ThroughputLpResult r = acyclic_word_optimal_lp(inst, w);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.throughput, word_throughput_closed_form(inst, w),
                1e-6 * std::max(1.0, r.throughput))
        << to_string(w);
  }
}

TEST(ThroughputLp, OrderValidation) {
  const Instance inst = bmp::testing::fig1_instance();
  EXPECT_THROW(acyclic_order_optimal_lp(inst, {1, 0, 2, 3, 4, 5}),
               std::invalid_argument);
  EXPECT_THROW(acyclic_order_optimal_lp(inst, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(acyclic_word_optimal_lp(inst, make_word("GG")),
               std::invalid_argument);
}

}  // namespace
}  // namespace bmp::lp
