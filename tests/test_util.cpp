// Unit tests for the util substrate: exact rationals, statistics, RNG
// determinism, thread pool, and table rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include "bmp/util/rational.hpp"
#include "bmp/util/rng.hpp"
#include "bmp/util/stats.hpp"
#include "bmp/util/table.hpp"
#include "bmp/util/thread_pool.hpp"

namespace bmp::util {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational negative(3, -9);
  EXPECT_EQ(negative.num(), -1);
  EXPECT_EQ(negative.den(), 3);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 2);
  const Rational b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, ComparisonIsExact) {
  EXPECT_LT(Rational(5, 7), Rational(714286, 1000000));
  EXPECT_GT(Rational(5, 7), Rational(714285, 1000000));
  EXPECT_EQ(Rational(10, 14), Rational(5, 7));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::domain_error);
}

TEST(Rational, ToDoubleAndStr) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_EQ(Rational(22, 5).str(), "22/5");
  EXPECT_EQ(Rational(8, 4).str(), "2");
}

TEST(Rational, LargeIntermediatesReduce) {
  // (a/b) * (b/a) = 1 even when a*b would overflow int64 without __int128.
  const Rational a(3037000499LL, 7);
  const Rational b(7, 3037000499LL);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, OverflowThrows) {
  const Rational big(INT64_MAX / 2, 1);
  EXPECT_THROW(big * big, std::overflow_error);
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(min(Rational(1, 2), Rational(1, 3)), Rational(1, 3));
  EXPECT_EQ(max(Rational(1, 2), Rational(1, 3)), Rational(1, 2));
}

TEST(RunningStats, MatchesBatch) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
  EXPECT_EQ(rs.count(), 5u);
}

TEST(Stats, QuantileType7) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
}

TEST(Stats, QuantileValidation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Stats, BoxStats) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q25, 26.0);
  EXPECT_DOUBLE_EQ(b.q75, 76.0);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 101.0);
  EXPECT_EQ(b.n, 101u);
  EXPECT_FALSE(to_string(b).empty());
}

TEST(Rng, DeterministicAcrossRuns) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkIndependence) {
  const Xoshiro256 base(7);
  Xoshiro256 c1 = base.fork(1);
  Xoshiro256 c2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1() == c2()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUniformish) {
  Xoshiro256 rng(5);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.below(10)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 100);
  }
}

TEST(Rng, WorksWithStdDistributions) {
  Xoshiro256 rng(11);
  std::normal_distribution<double> normal(0.0, 1.0);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(normal(rng));
  EXPECT_NEAR(rs.mean(), 0.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.05);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  parallel_for(pool, 1, 10001, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), 10001LL * 10000 / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, TaskExceptionRethrownInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The exception is consumed: the pool is reusable afterwards.
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_for(
          pool, 0, 100,
          [&](std::size_t i) {
            executed.fetch_add(1);
            if (i == 13) throw std::invalid_argument("bad cell");
          },
          /*chunk=*/1),
      std::invalid_argument);
  // All other tasks still ran: one failure does not abandon the batch.
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    parallel_for(pool, 0, 100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"b", Table::num(42)});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1.50\nb,42\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.to_csv(), "a,b,c\nx,,\n");
}

}  // namespace
}  // namespace bmp::util
