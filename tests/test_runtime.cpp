// Runtime subsystem tests: broker admission/reclaim/rebalance accounting,
// metrics registry determinism, scenario compilation, event-loop handling,
// and the acceptance scenario — 3 channels on a 500-node heterogeneous
// platform replaying deterministically, never oversubscribing a node's
// multi-port budget, and holding >= 0.85x design throughput through churn.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bmp/flow/maxflow.hpp"
#include "bmp/runtime/capacity_broker.hpp"
#include "bmp/runtime/metrics.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"

namespace bmp::runtime {
namespace {

// --------------------------------------------------------- capacity broker

TEST(CapacityBroker, AdmitsUntilPoolExhausted) {
  CapacityBroker broker;
  EXPECT_DOUBLE_EQ(broker.usable(), 1.0);
  ASSERT_TRUE(broker.admit(1, 2.0, 0.5).has_value());
  ASSERT_TRUE(broker.admit(2, 1.0, 0.3).has_value());
  EXPECT_NEAR(broker.available(), 0.2, 1e-12);
  // 0.3 > 0.2 left: would oversubscribe every node's budget.
  EXPECT_FALSE(broker.admit(3, 1.0, 0.3).has_value());
  EXPECT_TRUE(broker.admit(3, 1.0, 0.2).has_value());
  EXPECT_EQ(broker.channels(), 3u);
  EXPECT_EQ(broker.admissions(), 3u);
  EXPECT_EQ(broker.rejections(), 1u);
}

TEST(CapacityBroker, ReleaseReclaimsFraction) {
  CapacityBroker broker;
  ASSERT_TRUE(broker.admit(7, 1.0, 0.6).has_value());
  EXPECT_FALSE(broker.admit(8, 1.0, 0.5).has_value());
  EXPECT_DOUBLE_EQ(broker.release(7), 0.6);
  EXPECT_TRUE(broker.admit(8, 1.0, 0.5).has_value());
  EXPECT_EQ(broker.releases(), 1u);
  EXPECT_THROW(broker.release(7), std::invalid_argument);
}

TEST(CapacityBroker, RebalanceRestoresWeightedFairShares) {
  CapacityBroker broker;
  ASSERT_TRUE(broker.admit(1, 3.0, 0.5).has_value());
  ASSERT_TRUE(broker.admit(2, 1.0, 0.1).has_value());
  const std::vector<Grant> changed = broker.rebalance(0.8);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_NEAR(broker.grant(1)->fraction, 0.8 * 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(broker.grant(2)->fraction, 0.8 * 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(broker.allocated(), 0.8, 1e-12);
  // Already at fair shares: nothing to change.
  EXPECT_TRUE(broker.rebalance(0.8).empty());
}

TEST(CapacityBroker, HeadroomShrinksThePool) {
  CapacityBroker broker(0.25);
  EXPECT_DOUBLE_EQ(broker.usable(), 0.75);
  EXPECT_FALSE(broker.admit(1, 1.0, 0.8).has_value());
  EXPECT_TRUE(broker.admit(1, 1.0, 0.75).has_value());
}

TEST(CapacityBroker, ReleaseMidRenegotiationKeepsAccountingExact) {
  // A channel closing between a rebalance and the next one must reclaim
  // exactly its renegotiated fraction, and the following rebalance must
  // redistribute over the surviving weights only.
  CapacityBroker broker;
  ASSERT_TRUE(broker.admit(1, 2.0, 0.5).has_value());
  ASSERT_TRUE(broker.admit(2, 1.0, 0.3).has_value());
  ASSERT_TRUE(broker.admit(3, 1.0, 0.1).has_value());
  (void)broker.rebalance(1.0);
  EXPECT_NEAR(broker.grant(1)->fraction, 0.5, 1e-12);
  // Channel 1 closes holding its renegotiated half of the pool.
  EXPECT_NEAR(broker.release(1), 0.5, 1e-12);
  EXPECT_NEAR(broker.allocated(), 0.5, 1e-12);
  // A newcomer fits in the reclaimed space, to the boundary.
  EXPECT_TRUE(broker.admit(4, 1.0, 0.5).has_value());
  EXPECT_FALSE(broker.admit(5, 1.0, 0.1).has_value());
  // The next rebalance never resurrects the closed channel's weight.
  (void)broker.rebalance(0.9);
  EXPECT_FALSE(broker.grant(1).has_value());
  EXPECT_NEAR(broker.grant(2)->fraction, 0.9 / 3.0, 1e-12);
  EXPECT_NEAR(broker.grant(3)->fraction, 0.9 / 3.0, 1e-12);
  EXPECT_NEAR(broker.grant(4)->fraction, 0.9 / 3.0, 1e-12);
  EXPECT_NEAR(broker.allocated(), 0.9, 1e-12);
  // Releasing everything settles the pool back to exactly empty.
  broker.release(2);
  broker.release(3);
  broker.release(4);
  EXPECT_DOUBLE_EQ(broker.allocated(), 0.0);
  EXPECT_TRUE(broker.rebalance(1.0).empty());
}

TEST(CapacityBroker, RejectsMalformedRequests) {
  CapacityBroker broker;
  EXPECT_THROW(broker.admit(1, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(broker.admit(1, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(broker.admit(1, 1.0, 1.5), std::invalid_argument);
  ASSERT_TRUE(broker.admit(1, 1.0, 0.5).has_value());
  EXPECT_THROW(broker.admit(1, 1.0, 0.1), std::invalid_argument);  // duplicate
  EXPECT_THROW(broker.rebalance(0.0), std::invalid_argument);
  EXPECT_THROW(CapacityBroker(1.0), std::invalid_argument);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, WindowedHistogramStats) {
  WindowedHistogram hist(4);
  for (const double v : {4.0, 1.0, 3.0, 2.0}) hist.observe(v);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 10.0);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 4.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 4.0);
  // The window slides: 4.0 falls out, cumulative min/max remain.
  hist.observe(0.5);
  EXPECT_EQ(hist.window_size(), 4u);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(hist.max(), 4.0);
  EXPECT_THROW((void)hist.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram(0), std::invalid_argument);
}

TEST(Metrics, RegistrySnapshotIsNameSorted) {
  MetricsRegistry metrics;
  metrics.inc("zeta");
  metrics.inc("alpha", 2);
  metrics.set("gauge.x", 1.5);
  metrics.observe("hist.y", 3.0);
  EXPECT_EQ(metrics.counter("alpha"), 2u);
  EXPECT_EQ(metrics.counter("absent"), 0u);
  const MetricsSnapshot snap = metrics.snapshot();
  const std::string text = snap.to_string();
  EXPECT_LT(text.find("counter alpha 2"), text.find("counter zeta 1"));
  EXPECT_NE(text.find("gauge gauge.x 1.5"), std::string::npos);
  EXPECT_NE(text.find("histogram hist.y count=1"), std::string::npos);
}

TEST(Metrics, SetCounterMirrorsAndEraseDrops) {
  MetricsRegistry metrics;
  metrics.set_counter("mirrored", 7);
  metrics.set_counter("mirrored", 9);
  EXPECT_EQ(metrics.counter("mirrored"), 9u);
  metrics.set("gauge.dead", 1.0);
  metrics.observe("hist.dead", 2.0);
  metrics.erase("gauge.dead");
  metrics.erase("hist.dead");
  metrics.erase("never.existed");  // no-op
  const std::string text = metrics.snapshot().to_string();
  EXPECT_EQ(text.find("dead"), std::string::npos);
  EXPECT_NE(text.find("mirrored"), std::string::npos);
}

TEST(Metrics, TimingMetricsExcludedFromDeterministicView) {
  // The convention is centralized in MetricsRegistry::is_timing — the
  // snapshot export and the obs exporters all defer to it.
  EXPECT_TRUE(MetricsRegistry::is_timing("timing.event_loop_us"));
  EXPECT_FALSE(MetricsRegistry::is_timing("events.total"));
  EXPECT_FALSE(MetricsRegistry::is_timing("tim"));
  MetricsRegistry metrics;
  metrics.inc("events.total");
  metrics.observe("timing.event_loop_us", 123.0);
  metrics.set("timing.last", 9.0);
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_NE(snap.to_string(true).find(MetricsRegistry::kTimingPrefix),
            std::string::npos);
  EXPECT_EQ(snap.to_string(false).find(MetricsRegistry::kTimingPrefix),
            std::string::npos);
  EXPECT_NE(snap.to_string(false).find("events.total"), std::string::npos);
}

// ---------------------------------------------------------------- scenario

bool same_events(const std::vector<Event>& a, const std::vector<Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].type != b[i].type ||
        a[i].channel != b[i].channel || a[i].weight != b[i].weight ||
        a[i].fraction != b[i].fraction || a[i].leaves != b[i].leaves ||
        a[i].joins.size() != b[i].joins.size()) {
      return false;
    }
    for (std::size_t j = 0; j < a[i].joins.size(); ++j) {
      if (a[i].joins[j].bandwidth != b[i].joins[j].bandwidth ||
          a[i].joins[j].guarded != b[i].joins[j].guarded) {
        return false;
      }
    }
  }
  return true;
}

Scenario small_scenario(std::uint64_t seed) {
  Scenario scenario(8.0, seed);
  scenario.source(300.0)
      .population({30, 0.7, gen::Dist::kUnif100})
      .population({10, 0.2, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 2.0, 0.4})
      .channel({0.5, 6.0, 1.0, 0.3})
      .poisson_channels({0.5, 2.0, 1.0, 0.2})
      .flash_crowd({2.0, 8, {0, 0.8, gen::Dist::kUnif100}, 0.5, 2.0})
      .diurnal_churn({4.0, 0.6, 5.0, 0.5, {0, 0.5, gen::Dist::kUnif100}})
      .correlated_failure({6.0, 0.1})
      .renegotiate_every(3.0, 0.9);
  return scenario;
}

TEST(Scenario, BuildIsDeterministicPerSeed) {
  const ScenarioScript a = small_scenario(11).build();
  const ScenarioScript b = small_scenario(11).build();
  const ScenarioScript c = small_scenario(12).build();
  ASSERT_EQ(a.initial_peers.size(), 40u);
  EXPECT_TRUE(same_events(a.events, b.events));
  EXPECT_FALSE(same_events(a.events, c.events));
}

TEST(Scenario, EventsAreSortedAndLeavesAreAlive) {
  const ScenarioScript script = small_scenario(3).build();
  ASSERT_FALSE(script.events.empty());
  std::vector<char> alive(script.initial_peers.size() + 1, 1);
  for (std::size_t i = 0; i < script.events.size(); ++i) {
    const Event& event = script.events[i];
    if (i > 0) EXPECT_FALSE(event_before(event, script.events[i - 1]));
    EXPECT_EQ(event.sequence, i);
    for (const NodeSpec& join : event.joins) {
      EXPECT_TRUE(std::isfinite(join.bandwidth));
      alive.push_back(1);
    }
    for (const int id : event.leaves) {
      ASSERT_GT(id, 0);
      ASSERT_LT(static_cast<std::size_t>(id), alive.size());
      EXPECT_TRUE(alive[static_cast<std::size_t>(id)]) << "double departure";
      alive[static_cast<std::size_t>(id)] = 0;
    }
  }
}

TEST(Scenario, RejectsMalformedSpecs) {
  EXPECT_THROW(Scenario(0.0, 1), std::invalid_argument);
  Scenario scenario(1.0, 1);
  EXPECT_THROW(scenario.population({-1, 0.5, gen::Dist::kUnif100}),
               std::invalid_argument);
  EXPECT_THROW(scenario.population({1, 2.0, gen::Dist::kUnif100}),
               std::invalid_argument);
  EXPECT_THROW(scenario.channel({-1.0, -1.0, 1.0, 0.1}),
               std::invalid_argument);
  EXPECT_THROW(scenario.channel({0.0, -1.0, 1.0, 1.5}),  // fraction > 1
               std::invalid_argument);
  EXPECT_THROW(scenario.channel({0.5, 0.2, 1.0, 0.1}),  // closes before open
               std::invalid_argument);
  EXPECT_THROW(scenario.poisson_channels({1.0, 1.0, 1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(scenario.correlated_failure({0.5, 1.0}), std::invalid_argument);
  EXPECT_THROW(scenario.renegotiate_every(0.0), std::invalid_argument);
}

// ----------------------------------------------------------------- runtime

std::vector<NodeSpec> uniform_peers(int count, double bandwidth,
                                    int guarded_every = 3) {
  std::vector<NodeSpec> peers;
  for (int i = 0; i < count; ++i) {
    peers.push_back(NodeSpec{bandwidth, i % guarded_every == 0});
  }
  return peers;
}

Event open_event(double time, int channel, double weight, double fraction) {
  Event event;
  event.time = time;
  event.type = EventType::kChannelOpen;
  event.channel = channel;
  event.weight = weight;
  event.fraction = fraction;
  return event;
}

TEST(Runtime, OpenPlansOnScaledPlatform) {
  RuntimeConfig config;
  config.collect_timing = false;
  Runtime runtime(config, 100.0, uniform_peers(12, 10.0));
  runtime.step(open_event(0.0, 5, 1.0, 0.5));
  ASSERT_EQ(runtime.open_channels(), 1u);
  const engine::Session* session = runtime.session(5);
  ASSERT_NE(session, nullptr);
  // The session's platform is the population scaled by the granted 0.5.
  EXPECT_NEAR(session->capacities()[0], 50.0, 1e-12);
  EXPECT_NEAR(session->instance().b(1), 5.0, 1e-12);
  EXPECT_GT(session->design_rate(), 0.0);
  EXPECT_TRUE(runtime.validate().empty());
  EXPECT_EQ(runtime.metrics().counter("broker.admitted"), 1u);
  EXPECT_NEAR(runtime.metrics().gauge("channel.5.design_rate"),
              session->design_rate(), 1e-12);
}

TEST(Runtime, RejectedAdmissionLeavesNoChannel) {
  RuntimeConfig config;
  config.collect_timing = false;
  Runtime runtime(config, 100.0, uniform_peers(6, 10.0));
  runtime.step(open_event(0.0, 0, 1.0, 0.8));
  runtime.step(open_event(1.0, 1, 1.0, 0.5));  // 0.5 > 0.2 left
  EXPECT_EQ(runtime.open_channels(), 1u);
  EXPECT_EQ(runtime.session(1), nullptr);
  EXPECT_EQ(runtime.metrics().counter("broker.rejected"), 1u);
  // Closing the never-admitted channel is tolerated, not fatal.
  Event close;
  close.time = 2.0;
  close.type = EventType::kChannelClose;
  close.channel = 1;
  runtime.step(close);
  EXPECT_EQ(runtime.metrics().counter("broker.close_ignored"), 1u);
}

TEST(Runtime, RenegotiateRescalesSessionsExactly) {
  RuntimeConfig config;
  config.collect_timing = false;
  Runtime runtime(config, 100.0, uniform_peers(10, 10.0));
  runtime.step(open_event(0.0, 0, 3.0, 0.5));
  runtime.step(open_event(0.0, 1, 1.0, 0.25));
  const double design0 = runtime.session(0)->design_rate();
  ASSERT_GT(design0, 0.0);

  Event renegotiate;
  renegotiate.time = 1.0;
  renegotiate.type = EventType::kRenegotiate;
  renegotiate.utilization = 1.0;
  runtime.step(renegotiate);
  // Fair shares: 3/4 and 1/4 of the pool; channel 0 grew from 0.5 to 0.75,
  // and its design rate scaled by exactly the same factor.
  EXPECT_NEAR(runtime.broker().grant(0)->fraction, 0.75, 1e-12);
  EXPECT_NEAR(runtime.broker().grant(1)->fraction, 0.25, 1e-12);
  EXPECT_NEAR(runtime.session(0)->design_rate(), design0 * 1.5, 1e-9);
  EXPECT_TRUE(runtime.validate().empty());
  EXPECT_EQ(runtime.metrics().counter("broker.renegotiated"), 1u);
}

TEST(Runtime, JoinPolicyReplanRecruitsNewUploaders) {
  RuntimeConfig config;
  config.collect_timing = false;
  Runtime runtime(config, 100.0, uniform_peers(8, 4.0));
  runtime.step(open_event(0.0, 0, 1.0, 1.0));
  const double before = runtime.session(0)->design_rate();

  Event join;
  join.time = 1.0;
  join.type = EventType::kNodeJoin;
  join.joins.assign(4, NodeSpec{40.0, false});
  runtime.step(join);
  EXPECT_EQ(runtime.alive_peers(), 12);
  EXPECT_EQ(runtime.metrics().counter("replans.join"), 1u);
  // Fat joiners raise the plannable rate; the channel must exploit them.
  EXPECT_GT(runtime.session(0)->design_rate(), before + 1e-9);
  EXPECT_TRUE(runtime.validate().empty());
}

TEST(Runtime, DepartureRepairsEveryHostingChannel) {
  RuntimeConfig config;
  config.collect_timing = false;
  Runtime runtime(config, 200.0, uniform_peers(20, 10.0));
  runtime.step(open_event(0.0, 0, 1.0, 0.5));
  runtime.step(open_event(0.0, 1, 1.0, 0.5));

  Event leave;
  leave.time = 1.0;
  leave.type = EventType::kNodeLeave;
  leave.leaves = {3, 7};
  runtime.step(leave);
  EXPECT_EQ(runtime.alive_peers(), 18);
  ASSERT_EQ(runtime.churn_log().size(), 2u);
  for (const ChurnReport& report : runtime.churn_log()) {
    EXPECT_EQ(report.departed, 2);
    EXPECT_GE(report.achieved_rate, 0.85 * report.design_rate - 1e-9);
  }
  for (const int channel : {0, 1}) {
    const engine::Session* session = runtime.session(channel);
    EXPECT_EQ(session->instance().size(), 19);  // source + 18 peers
    EXPECT_TRUE(session->scheme().validate(session->instance()).empty());
  }
  EXPECT_TRUE(runtime.validate().empty());
  // Departing again with a dead id is a scenario-contract violation, and
  // the rejected event must not touch the population — even when a live
  // node precedes the bad id in the batch.
  Event again;
  again.time = 2.0;
  again.type = EventType::kNodeLeave;
  again.leaves = {5, 3};
  EXPECT_THROW(runtime.step(again), std::invalid_argument);
  again.leaves = {5, 5};
  EXPECT_THROW(runtime.step(again), std::invalid_argument);
  EXPECT_EQ(runtime.alive_peers(), 18);
  EXPECT_EQ(runtime.churn_log().size(), 2u);  // nothing was repaired
}

TEST(Runtime, ZeroCapacityNodeClassAdmitsRebalancesAndChurns) {
  // A class of zero-upload peers (pure leechers) must ride through
  // admission, renegotiation, and departure without wedging the broker,
  // the planner, or the budget audit.
  RuntimeConfig config;
  config.collect_timing = false;
  std::vector<NodeSpec> peers = uniform_peers(8, 10.0);
  for (int i = 0; i < 4; ++i) peers.push_back(NodeSpec{0.0, i % 2 == 0});
  Runtime runtime(config, 100.0, peers);
  runtime.step(open_event(0.0, 0, 2.0, 0.5));
  runtime.step(open_event(0.0, 1, 1.0, 0.25));
  ASSERT_EQ(runtime.open_channels(), 2u);
  // Zero-capacity peers are planned in (they still receive the stream).
  EXPECT_EQ(runtime.session(0)->instance().size(), 13);
  EXPECT_GT(runtime.session(0)->design_rate(), 0.0);

  Event renegotiate;
  renegotiate.time = 1.0;
  renegotiate.type = EventType::kRenegotiate;
  runtime.step(renegotiate);
  EXPECT_NEAR(runtime.broker().grant(0)->fraction, 2.0 / 3.0, 1e-12);

  Event leave;
  leave.time = 2.0;
  leave.type = EventType::kNodeLeave;
  leave.leaves = {9, 10};  // two of the zero-capacity peers
  runtime.step(leave);
  EXPECT_EQ(runtime.alive_peers(), 10);
  for (const ChurnReport& report : runtime.churn_log()) {
    EXPECT_GE(report.achieved_rate, 0.85 * report.design_rate - 1e-9);
  }
  EXPECT_TRUE(runtime.validate().empty());
}

TEST(Runtime, CloseBetweenRenegotiationsReclaimsTheRenegotiatedFraction) {
  // kRenegotiate / kChannelClose / kRenegotiate in sequence: the close
  // must reclaim the channel's *renegotiated* fraction, and the second
  // rebalance must hand the survivors their new fair shares exactly.
  RuntimeConfig config;
  config.collect_timing = false;
  Runtime runtime(config, 100.0, uniform_peers(10, 10.0));
  runtime.step(open_event(0.0, 0, 3.0, 0.4));
  runtime.step(open_event(0.0, 1, 1.0, 0.4));

  Event renegotiate;
  renegotiate.time = 1.0;
  renegotiate.type = EventType::kRenegotiate;
  runtime.step(renegotiate);
  EXPECT_NEAR(runtime.broker().grant(0)->fraction, 0.75, 1e-12);

  Event close;
  close.time = 1.0;  // same timestamp: sequence ordering decides
  close.type = EventType::kChannelClose;
  close.channel = 0;
  runtime.step(close);
  EXPECT_EQ(runtime.open_channels(), 1u);
  EXPECT_NEAR(runtime.broker().allocated(), 0.25, 1e-12);

  renegotiate.time = 1.0;
  runtime.step(renegotiate);
  EXPECT_NEAR(runtime.broker().grant(1)->fraction, 1.0, 1e-12);
  EXPECT_NEAR(runtime.session(1)->capacities()[0], 100.0, 1e-9);
  EXPECT_TRUE(runtime.validate().empty());
  // The freed capacity is immediately admittable after a release-heavy
  // sequence (no float residue locking the pool).
  runtime.step(open_event(2.0, 2, 1.0, 1.0));
  EXPECT_EQ(runtime.metrics().counter("broker.rejected"), 1u);
}

TEST(Runtime, GrantNeverLeaksWhenChannelSetupThrows) {
  // A malformed data-plane config makes stream setup throw mid-open; the
  // broker grant must be released on the way out (no capacity leak).
  RuntimeConfig config;
  config.collect_timing = false;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = 0.0;  // invalid: Execution ctor throws
  Runtime runtime(config, 100.0, uniform_peers(6, 10.0));
  EXPECT_THROW(runtime.step(open_event(0.0, 0, 1.0, 0.9)),
               std::invalid_argument);
  EXPECT_EQ(runtime.open_channels(), 0u);
  EXPECT_DOUBLE_EQ(runtime.broker().allocated(), 0.0);
  EXPECT_EQ(runtime.broker().channels(), 0u);
}

TEST(Runtime, RejectsOutOfOrderEvents) {
  RuntimeConfig config;
  config.collect_timing = false;
  Runtime runtime(config, 10.0, uniform_peers(4, 5.0));
  runtime.step(open_event(5.0, 0, 1.0, 0.5));
  EXPECT_THROW(runtime.step(open_event(4.0, 1, 1.0, 0.25)),
               std::invalid_argument);
  std::vector<Event> unsorted{open_event(3.0, 2, 1.0, 0.1),
                              open_event(2.0, 3, 1.0, 0.1)};
  unsorted[0].sequence = 0;
  unsorted[1].sequence = 1;
  EXPECT_THROW(runtime.run(unsorted), std::invalid_argument);
}

// ------------------------------------------------- acceptance (ISSUE 2)

// 3 channels on a 500-node heterogeneous platform: replay determinism,
// the shared-budget invariant after every event, and the churn bar.
TEST(RuntimeAcceptance, ThreeChannels500NodesDeterministicAndWithinBudget) {
  Scenario scenario(10.0, /*seed=*/2024);
  scenario.source(3000.0)
      .population({300, 0.75, gen::Dist::kUnif100})
      .population({200, 0.25, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, /*weight=*/2.0, /*fraction=*/0.4})
      .channel({0.0, -1.0, 1.0, 0.3})
      .channel({0.1, -1.0, 1.0, 0.2})
      .flash_crowd({2.0, 40, {0, 0.8, gen::Dist::kUnif100}, 0.5, 3.0})
      .diurnal_churn({5.0, 0.5, 8.0, 0.4, {0, 0.5, gen::Dist::kUnif100}})
      .correlated_failure({8.0, 0.10})
      .renegotiate_every(4.0, 0.95);
  const ScenarioScript script = scenario.build();
  ASSERT_EQ(script.initial_peers.size(), 500u);

  RuntimeConfig config;
  config.collect_timing = false;

  const auto replay = [&](bool audit_every_event) {
    Runtime runtime(config, script.source_bandwidth, script.initial_peers);
    for (const Event& event : script.events) {
      runtime.step(event);
      if (audit_every_event) {
        // Summed per-channel allocation <= b_i for every node, always.
        const auto violations = runtime.validate();
        EXPECT_TRUE(violations.empty())
            << "after t=" << event.time << ": " << violations.front();
      }
    }
    return runtime.metrics().snapshot().to_string(/*include_timing=*/false);
  };

  Runtime runtime(config, script.source_bandwidth, script.initial_peers);
  runtime.run(script.events);

  // All three scripted channels were admitted and stayed live.
  EXPECT_GE(runtime.metrics().counter("broker.admitted"), 3u);
  for (const int channel : {0, 1, 2}) {
    ASSERT_NE(runtime.session(channel), nullptr);
    EXPECT_GT(runtime.session(channel)->design_rate(), 0.0);
  }
  EXPECT_LE(runtime.broker().allocated(), runtime.broker().usable() + 1e-9);
  EXPECT_TRUE(runtime.validate().empty());

  // The platform actually churned, and every hosting channel held the bar:
  // achieved >= 0.85x its broker-granted design rate after every event.
  ASSERT_GT(runtime.churn_log().size(), 10u);
  int leaves = 0;
  for (const ChurnReport& report : runtime.churn_log()) {
    if (report.type == EventType::kNodeLeave) ++leaves;
    ASSERT_GT(report.design_rate, 0.0);
    EXPECT_GE(report.achieved_rate, 0.85 * report.design_rate - 1e-9)
        << "channel " << report.channel << " at t=" << report.time;
  }
  EXPECT_GT(leaves, 0);

  // Replay determinism: identical seed => identical metrics snapshot,
  // including a run audited step-by-step.
  const std::string first = replay(true);
  const std::string second = replay(false);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, runtime.metrics().snapshot().to_string(false));
  EXPECT_NE(first.find("counter repairs.incremental"), std::string::npos);
}

}  // namespace
}  // namespace bmp::runtime
