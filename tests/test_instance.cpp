// Instance model tests: sorting, class predicates, prefix sums, the
// closed-form bounds of §III.B / Lemma 5.1, and the fixed-point source
// bandwidth used by the Fig. 19 setup.
#include <gtest/gtest.h>

#include "bmp/core/bounds.hpp"
#include "bmp/core/instance.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

using testing::fig1_instance;

TEST(Instance, SortsEachClassDescending) {
  const Instance inst(3.0, {1.0, 7.0, 4.0}, {2.0, 9.0});
  EXPECT_EQ(inst.n(), 3);
  EXPECT_EQ(inst.m(), 2);
  EXPECT_EQ(inst.size(), 6);
  EXPECT_DOUBLE_EQ(inst.b(0), 3.0);
  EXPECT_DOUBLE_EQ(inst.b(1), 7.0);
  EXPECT_DOUBLE_EQ(inst.b(2), 4.0);
  EXPECT_DOUBLE_EQ(inst.b(3), 1.0);
  EXPECT_DOUBLE_EQ(inst.b(4), 9.0);
  EXPECT_DOUBLE_EQ(inst.b(5), 2.0);
}

TEST(Instance, OriginalIdsTrackInputPositions) {
  const Instance inst(3.0, {1.0, 7.0, 4.0}, {2.0, 9.0});
  EXPECT_EQ(inst.original_id(0), 0);
  EXPECT_EQ(inst.original_id(1), 2);  // 7.0 was the 2nd open input
  EXPECT_EQ(inst.original_id(2), 3);  // 4.0 was the 3rd
  EXPECT_EQ(inst.original_id(3), 1);  // 1.0 was the 1st
  EXPECT_EQ(inst.original_id(4), 5);  // 9.0 was the 2nd guarded input
  EXPECT_EQ(inst.original_id(5), 4);
}

TEST(Instance, ClassPredicates) {
  const Instance inst = fig1_instance();
  EXPECT_TRUE(inst.is_source(0));
  EXPECT_TRUE(inst.is_open(0));
  EXPECT_TRUE(inst.is_open(2));
  EXPECT_FALSE(inst.is_guarded(2));
  EXPECT_TRUE(inst.is_guarded(3));
  EXPECT_TRUE(inst.is_guarded(5));
}

TEST(Instance, SumsAndPrefixes) {
  const Instance inst = fig1_instance();
  EXPECT_DOUBLE_EQ(inst.open_sum(), 10.0);
  EXPECT_DOUBLE_EQ(inst.guarded_sum(), 6.0);
  EXPECT_DOUBLE_EQ(inst.total_sum(), 22.0);
  EXPECT_DOUBLE_EQ(inst.prefix_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(inst.prefix_sum(2), 16.0);
  EXPECT_DOUBLE_EQ(inst.prefix_sum(5), 22.0);
}

TEST(Instance, RejectsNegativeBandwidth) {
  EXPECT_THROW(Instance(-1.0, {}, {}), std::invalid_argument);
  EXPECT_THROW(Instance(1.0, {-0.5}, {}), std::invalid_argument);
  EXPECT_THROW(Instance(1.0, {}, {-2.0}), std::invalid_argument);
}

TEST(Instance, RationalToDoubleRoundTrip) {
  const RationalInstance ri = testing::fig1_rational();
  const Instance di = to_double(ri);
  ASSERT_EQ(di.size(), 6);
  for (int i = 0; i < di.size(); ++i) {
    EXPECT_DOUBLE_EQ(di.b(i), ri.b(i).to_double());
  }
}

TEST(Bounds, CyclicUpperBoundMatchesLemma51OnFig1) {
  // min(6, 16/3, 22/5) = 4.4 — the paper states Fig. 1's scheme is optimal.
  EXPECT_DOUBLE_EQ(cyclic_upper_bound(fig1_instance()), 4.4);
}

TEST(Bounds, CyclicUpperBoundExactRational) {
  const auto bound = cyclic_upper_bound(testing::fig1_rational());
  EXPECT_EQ(bound, util::Rational(22, 5));
}

TEST(Bounds, AcyclicOpenOptimalFormula) {
  // min(b0, S_{n-1}/n): S_2 = 5+5+3 = 13, n = 3 -> 13/3.
  const Instance inst(5.0, {5.0, 3.0, 2.0}, {});
  EXPECT_DOUBLE_EQ(acyclic_open_optimal(inst), 13.0 / 3.0);
  // Source-limited case.
  const Instance src_limited(1.0, {10.0, 10.0}, {});
  EXPECT_DOUBLE_EQ(acyclic_open_optimal(src_limited), 1.0);
}

TEST(Bounds, AcyclicOpenOptimalRequiresOpenOnly) {
  EXPECT_THROW(acyclic_open_optimal(fig1_instance()), std::invalid_argument);
  EXPECT_THROW(cyclic_open_optimal(fig1_instance()), std::invalid_argument);
}

TEST(Bounds, CyclicOpenOptimalFormula) {
  const Instance inst(5.0, {5.0, 3.0, 2.0}, {});
  EXPECT_DOUBLE_EQ(cyclic_open_optimal(inst), 5.0);  // min(5, 15/3)
  const Instance tighter(9.0, {2.0, 2.0, 2.0}, {});
  EXPECT_DOUBLE_EQ(cyclic_open_optimal(tighter), 5.0);  // (9+6)/3
}

TEST(Bounds, NoReceiversConvention) {
  const Instance inst(3.0, {}, {});
  EXPECT_DOUBLE_EQ(acyclic_open_optimal(inst), 3.0);
  EXPECT_DOUBLE_EQ(cyclic_open_optimal(inst), 3.0);
  EXPECT_DOUBLE_EQ(cyclic_upper_bound(inst), 3.0);
}

TEST(Bounds, FixedPointSourceBandwidthSolvesItsEquation) {
  util::Xoshiro256 rng(123);
  for (int rep = 0; rep < 50; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(20));
    const int m = static_cast<int>(rng.below(20));
    if (n + m < 2) continue;
    std::vector<double> open;
    std::vector<double> guarded;
    for (int i = 0; i < n; ++i) open.push_back(rng.uniform(0.5, 20.0));
    for (int i = 0; i < m; ++i) guarded.push_back(rng.uniform(0.5, 20.0));
    const double b0 = fixed_point_source_bandwidth(open, guarded);
    const Instance inst(b0, open, guarded);
    // By construction b0 equals the cyclic optimum: the source is exactly
    // the bottleneck.
    EXPECT_NEAR(cyclic_upper_bound(inst), b0, 1e-9 * std::max(1.0, b0));
  }
}

TEST(Bounds, FixedPointDegenerateFallsBack) {
  EXPECT_GT(fixed_point_source_bandwidth({}, {}), 0.0);
  EXPECT_GT(fixed_point_source_bandwidth({4.0}, {}), 0.0);
}

}  // namespace
}  // namespace bmp
