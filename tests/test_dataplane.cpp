// Data-plane tests: deterministic event ordering, exact pipe timing,
// rarest-first duplicate avoidance, window backpressure, loss/retransmit,
// live patching mid-stream, the bounded multi-port audit — and the ISSUE 4
// acceptance bars: a lossless zero-latency 500-node acyclic scheme must
// *achieve* >= 0.95x the planner's verified throughput end-to-end, and a
// churning multi-channel runtime must sustain >= 0.85x design rate with
// live-patched repairs only, replaying bit-identically across runs and
// planner thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/dataplane/event_queue.hpp"
#include "bmp/dataplane/execution.hpp"
#include "bmp/flow/verify.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::dataplane {
namespace {

// ------------------------------------------------------------ event queue

TEST(EventQueue, OrdersByTimeThenPushSequence) {
  EventQueue queue;
  ChunkEvent event;
  event.time = 2.0;
  event.chunk = 0;
  queue.push(event);
  event.time = 1.0;
  event.chunk = 1;
  queue.push(event);
  event.time = 1.0;  // tie: must pop after the earlier push at t = 1
  event.chunk = 2;
  queue.push(event);
  event.time = 0.5;
  event.chunk = 3;
  queue.push(event);
  std::vector<int> order;
  while (!queue.empty()) order.push_back(queue.pop().chunk);
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2, 0}));
}

// ------------------------------------------------------------ exact timing

ExecutionConfig file_config(int chunks) {
  ExecutionConfig config;
  config.chunk_size = 1.0;
  config.total_chunks = chunks;
  config.emission_rate = 0.0;  // everything available at t = 0
  config.warmup_chunks = 0;
  return config;
}

TEST(Execution, ChainDeliversAtExactPipeTiming) {
  Execution exec(file_config(3));
  const int source = exec.add_node(1.0);
  const int a = exec.add_node(1.0);
  const int b = exec.add_node(0.0);
  exec.set_edge(source, a, 1.0);
  exec.set_edge(a, b, 1.0);
  exec.run_to_completion();
  // Serial unit-rate pipes: A gets chunk k at k + 1; B pipelines one hop
  // behind, its last chunk lands at 4.
  EXPECT_DOUBLE_EQ(exec.completion_time(a), 3.0);
  EXPECT_DOUBLE_EQ(exec.completion_time(b), 4.0);
  EXPECT_EQ(exec.delivered(a), 3);
  EXPECT_EQ(exec.delivered(b), 3);
  EXPECT_EQ(exec.delivered_chunks(), 6u);
  EXPECT_EQ(exec.losses(), 0u);
  EXPECT_EQ(exec.duplicates(), 0u);
}

TEST(Execution, LatencyPipelinesThroughPropagation) {
  ExecutionConfig config = file_config(4);
  config.latency = 0.25;
  Execution exec(config);
  const int source = exec.add_node(1.0);
  const int a = exec.add_node(0.0);
  exec.set_edge(source, a, 1.0);
  exec.run_to_completion();
  // The pipe frees at transmission end, so chunks pipeline through the
  // propagation delay: completion shifts by one latency, not four.
  EXPECT_DOUBLE_EQ(exec.completion_time(a), 4.25);
}

TEST(Execution, RarestFirstSplitsParentsWithoutDuplicates) {
  Execution exec(file_config(40));
  const int source = exec.add_node(2.0);
  const int a = exec.add_node(1.0);
  const int b = exec.add_node(1.0);
  const int c = exec.add_node(0.0);
  exec.set_edge(source, a, 1.0);
  exec.set_edge(source, b, 1.0);
  exec.set_edge(a, c, 1.0);
  exec.set_edge(b, c, 1.0);
  exec.run_to_completion();
  // Both parents receive the full stream at rate 1, so C is availability
  // bound: chunk k exists upstream at time k + 1 and crosses one hop later.
  // The point: two pipes race for every chunk, yet the in-flight
  // reservations mean each chunk crosses to C exactly once.
  EXPECT_EQ(exec.delivered(c), 40);
  EXPECT_EQ(exec.duplicates(), 0u);
  EXPECT_GE(exec.completion_time(c), 40.0);
  EXPECT_LE(exec.completion_time(c), 42.0);
}

TEST(Execution, WindowBackpressureStallsButDelivers) {
  ExecutionConfig config = file_config(10);
  config.receiver_window = 1;
  config.latency = 0.5;  // keeps the window occupied while propagating
  Execution exec(config);
  const int source = exec.add_node(1.0);
  const int a = exec.add_node(0.0);
  exec.set_edge(source, a, 1.0);
  exec.run_to_completion();
  EXPECT_EQ(exec.delivered(a), 10);
  EXPECT_GT(exec.hol_stalls(), 0u);
  // Window 1 + latency 0.5 serializes chunk k's arrival before chunk k+1's
  // send: one chunk per 1.5s instead of 1s.
  EXPECT_NEAR(exec.completion_time(a), 10.0 * 1.5 - 0.5 + 0.5, 1e-9);
}

TEST(Execution, LossRetransmitsAndReplaysBitIdentically) {
  const auto run = [] {
    ExecutionConfig config = file_config(50);
    config.loss_rate = 0.3;
    config.seed = 99;
    Execution exec(config);
    const int source = exec.add_node(1.0);
    const int a = exec.add_node(1.0);
    const int b = exec.add_node(0.0);
    exec.set_edge(source, a, 1.0);
    exec.set_edge(a, b, 1.0);
    exec.run_to_completion();
    return exec;
  };
  const Execution first = run();
  const Execution second = run();
  EXPECT_EQ(first.delivered(2), 50);
  EXPECT_GT(first.losses(), 0u);
  EXPECT_EQ(first.losses(), first.retransmits());
  EXPECT_EQ(first.losses(), second.losses());
  EXPECT_DOUBLE_EQ(first.completion_time(1), second.completion_time(1));
  EXPECT_DOUBLE_EQ(first.completion_time(2), second.completion_time(2));
}

TEST(Execution, RejectsMalformedConfigAndOps) {
  ExecutionConfig config;
  config.chunk_size = 0.0;
  EXPECT_THROW(Execution{config}, std::invalid_argument);
  config = ExecutionConfig{};
  config.loss_rate = 0.99;
  EXPECT_THROW(Execution{config}, std::invalid_argument);
  config = ExecutionConfig{};
  config.overtake_factor = 1.0;
  EXPECT_THROW(Execution{config}, std::invalid_argument);

  Execution exec(file_config(1));
  const int source = exec.add_node(1.0);
  const int a = exec.add_node(1.0);
  EXPECT_THROW(exec.set_edge(source, source, 1.0), std::invalid_argument);
  EXPECT_THROW(exec.set_edge(source, 7, 1.0), std::invalid_argument);
  EXPECT_THROW(exec.remove_node(source), std::invalid_argument);
  exec.remove_node(a);
  EXPECT_THROW(exec.remove_node(a), std::invalid_argument);
  EXPECT_THROW(exec.run_until(-1.0), std::invalid_argument);
}

// ----------------------------------------------------------- live patching

TEST(Execution, LivePatchDropsInflightAndSplicesNewEdges) {
  ExecutionConfig config;
  config.chunk_size = 1.0;
  config.total_chunks = 30;
  config.emission_rate = 1.0;  // paced stream
  config.warmup_chunks = 0;
  // Propagation latency puts chunks *in the wire* (sent, not yet arrived)
  // at the removal instant: their window slots and reservations must be
  // released with the pipes, or B would wait on them forever.
  config.latency = 0.5;
  Execution exec(config);
  const int source = exec.add_node(1.0);
  const int a = exec.add_node(1.0);
  const int b = exec.add_node(0.0);
  exec.set_edge(source, a, 1.0);
  exec.set_edge(a, b, 1.0);
  exec.run_until(10.25);  // mid-propagation: a chunk is in flight to B
  const int delivered_before = exec.delivered(b);
  EXPECT_GT(delivered_before, 0);
  // A departs mid-stream; the repaired overlay feeds B from the source.
  // Chunks in flight on A's pipes drop, their reservations release, and B
  // re-requests them over the spliced edge — the stream never restarts.
  exec.remove_node(a);
  EXPECT_FALSE(exec.node_alive(a));
  exec.reconcile_edges({{source, b, 1.0}});
  exec.run_to_completion();
  EXPECT_EQ(exec.delivered(b), 30);
  EXPECT_GE(exec.completion_time(b), 30.0);
  EXPECT_TRUE(exec.validate().empty());
}

TEST(Execution, LateJoinerStartsAtTheLiveEdge) {
  ExecutionConfig config;
  config.chunk_size = 1.0;
  config.total_chunks = 20;
  config.emission_rate = 1.0;
  config.warmup_chunks = 0;
  Execution exec(config);
  const int source = exec.add_node(2.0);
  const int a = exec.add_node(1.0);
  exec.set_edge(source, a, 1.0);
  exec.run_until(10.0);
  const int late = exec.add_node(0.0);
  exec.set_edge(source, late, 1.0);
  exec.run_to_completion();
  const NodeProgress progress = exec.progress(late);
  EXPECT_GT(progress.skipped, 0);
  EXPECT_EQ(progress.delivered, 20 - progress.skipped);
  EXPECT_GE(progress.completion_time, 0.0);
  EXPECT_EQ(exec.delivered(a), 20);
}

// ------------------------------------------------------- effective world

TEST(Execution, EffectiveCapacityThrottlesProportionally) {
  // Nominal plan: two rate-1 pipes out of the source. A brownout capping
  // the source at 1.0 halves every transmission's wire rate, so the run
  // takes twice as long — and removing the cap restores nominal timing.
  const auto run = [](double cap) {
    Execution exec(file_config(4));
    const int source = exec.add_node(2.0);
    const int a = exec.add_node(0.0);
    const int b = exec.add_node(0.0);
    exec.set_edge(source, a, 1.0);
    exec.set_edge(source, b, 1.0);
    if (cap > 0.0) exec.set_effective_capacity(source, cap);
    exec.run_to_completion();
    return std::max(exec.completion_time(a), exec.completion_time(b));
  };
  EXPECT_DOUBLE_EQ(run(-1.0), 4.0);
  EXPECT_DOUBLE_EQ(run(1.0), 8.0);
  // A plan refitted inside the cap is not throttled at all: that is the
  // lever the adaptive control plane pulls.
  Execution refit(file_config(4));
  const int source = refit.add_node(2.0);
  const int a = refit.add_node(0.0);
  refit.set_effective_capacity(source, 1.0);
  refit.set_edge(source, a, 1.0);  // planned egress == effective capacity
  refit.run_to_completion();
  EXPECT_DOUBLE_EQ(refit.completion_time(a), 4.0);
}

TEST(Execution, EgressProfileClassesAndEdgeOverride) {
  ExecutionConfig config = file_config(60);
  config.seed = 17;
  const auto run = [&](bool lossy_egress, bool clean_override) {
    Execution exec(config);
    const int source = exec.add_node(1.0);
    const int a = exec.add_node(0.0);
    if (lossy_egress) exec.set_egress_profile(source, {0.3, 0.0, 0.0});
    if (clean_override) exec.set_edge_profile(source, a, LinkProfile{});
    exec.set_edge(source, a, 1.0);
    exec.run_to_completion();
    return exec;
  };
  const Execution clean = run(false, false);
  EXPECT_EQ(clean.losses(), 0u);
  const Execution lossy = run(true, false);
  EXPECT_GT(lossy.losses(), 0u);
  const std::vector<EdgeStats> stats = lossy.edge_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].lost, lossy.losses());
  EXPECT_EQ(stats[0].delivered, 60u);
  EXPECT_EQ(stats[0].sent, 60u + lossy.losses());
  // A per-edge override beats the sender's egress class.
  const Execution overridden = run(true, true);
  EXPECT_EQ(overridden.losses(), 0u);
}

TEST(Execution, RateJitterSlowsButReplaysDeterministically) {
  ExecutionConfig config = file_config(50);
  config.seed = 23;
  const auto run = [&] {
    Execution exec(config);
    const int source = exec.add_node(1.0);
    const int a = exec.add_node(0.0);
    exec.set_egress_profile(source, {0.0, 0.0, 0.5});
    exec.set_edge(source, a, 1.0);
    exec.run_to_completion();
    return exec.completion_time(1);
  };
  const double jittered = run();
  EXPECT_GT(jittered, 50.0);       // strictly slower than nominal
  EXPECT_LT(jittered, 2.0 * 50.0); // jitter is bounded below 2x
  EXPECT_DOUBLE_EQ(jittered, run());
}

TEST(Execution, ScanIndexPicksMatchTheLinearScan) {
  // Differential: the per-rarity bucket index must pick the identical
  // chunk as the linear window scan at every send — identical event
  // streams, to the bit, loss and all.
  util::Xoshiro256 rng(9);
  const Instance platform =
      gen::random_instance({60, 0.6, gen::Dist::kUnif100}, rng);
  const AcyclicSolution solution = solve_acyclic(platform);
  ExecutionConfig config;
  config.chunk_size = solution.throughput * 0.05;
  config.total_chunks = 200;
  config.emission_rate = solution.throughput;
  config.loss_rate = 0.05;
  config.seed = 77;
  const auto run = [&](bool indexed) {
    config.use_scan_index = indexed;
    Execution exec(platform, solution.scheme, config);
    exec.run_to_completion();
    return exec;
  };
  const Execution with_index = run(true);
  const Execution without = run(false);
  ASSERT_EQ(with_index.num_nodes(), without.num_nodes());
  for (int node = 1; node < with_index.num_nodes(); ++node) {
    EXPECT_DOUBLE_EQ(with_index.completion_time(node),
                     without.completion_time(node))
        << "node " << node;
  }
  EXPECT_EQ(with_index.losses(), without.losses());
  EXPECT_EQ(with_index.duplicates(), without.duplicates());
  EXPECT_EQ(with_index.hol_stalls(), without.hol_stalls());
}

TEST(Execution, SharpUpwardRerateRestartsTheInFlightTransmission) {
  ExecutionConfig config = file_config(5);
  Execution exec(config);
  const int source = exec.add_node(10.0);
  const int a = exec.add_node(0.0);
  exec.set_edge(source, a, 0.01);  // a trickle: 100 s per chunk
  exec.run_until(1.0);             // mid-glacial-transmission
  EXPECT_EQ(exec.delivered(a), 0);
  // Re-planned as an artery: the squatting transmission restarts at the
  // new rate instead of blocking the wire for another 99 virtual seconds.
  exec.set_edge(source, a, 10.0);
  exec.run_to_completion();
  EXPECT_EQ(exec.delivered(a), 5);
  EXPECT_LT(exec.completion_time(a), 2.0);
}

// ------------------------------------------- acceptance: plan vs achieved

TEST(DataPlaneAcceptance, Achieves95PercentOfVerifiedThroughputOn500Nodes) {
  util::Xoshiro256 rng(2026);
  const Instance platform =
      gen::random_instance({500, 0.6, gen::Dist::kUnif100}, rng);
  const AcyclicSolution solution = solve_acyclic(platform);
  ASSERT_TRUE(solution.scheme.is_acyclic());
  const double verified = flow::verify_throughput(solution.scheme).throughput;
  ASSERT_NEAR(verified, solution.throughput, 1e-6 * solution.throughput);

  ExecutionConfig config;
  config.chunk_size = solution.throughput * 0.05;  // 20 chunks per second
  config.total_chunks = 300;
  config.emission_rate = solution.throughput;
  config.warmup_chunks = 60;
  Execution exec(platform, solution.scheme, config);
  exec.run_to_completion();

  const ExecutionReport report = exec.report(solution.throughput);
  // Lossless, zero latency: every node must sustain >= 0.95x the verified
  // fluid rate chunk-by-chunk...
  EXPECT_GE(report.achieved_rate, 0.95 * verified);
  // ... and the data plane can never beat the flow bound (small slack for
  // the windowed empirical measurement).
  EXPECT_LE(report.achieved_rate, verified * 1.02 + 1e-9);
  EXPECT_LE(report.stretch, 1.0 / 0.95);
  EXPECT_EQ(report.losses, 0u);
  for (int node = 1; node < exec.num_nodes(); ++node) {
    EXPECT_EQ(exec.delivered(node), 300) << "node " << node;
    EXPECT_GE(exec.completion_time(node), 0.0);
  }
  EXPECT_TRUE(exec.validate().empty());
}

// --------------------------------------- runtime execution mode acceptance

runtime::ScenarioScript churn_script(std::uint64_t seed) {
  runtime::Scenario scenario(6.0, seed);
  scenario.source(2000.0)
      .population({72, 0.7, gen::Dist::kUnif100})
      .population({48, 0.3, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, /*weight=*/2.0, /*fraction=*/0.4})
      .channel({0.0, -1.0, 1.0, 0.2})
      .channel({0.2, -1.0, 1.0, 0.15})
      .poisson_channels({0.8, 1.5, 1.0, 0.1})
      .flash_crowd({1.8, 24, {0, 0.8, gen::Dist::kUnif100}, 0.7, 1.2})
      .diurnal_churn({3.0, 0.8, 8.0, 0.45, {0, 0.5, gen::Dist::kUnif100}})
      .correlated_failure({4.5, 0.10})
      .renegotiate_every(1.2, 0.95);
  return scenario.build();
}

runtime::RuntimeConfig execution_config(std::size_t planner_threads) {
  runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.planner.threads = planner_threads;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = 4.0;
  return config;
}

TEST(DataPlaneAcceptance, ChurningRuntimeSustains85PercentWithLivePatches) {
  const runtime::ScenarioScript script = churn_script(7);
  runtime::RuntimeConfig config = execution_config(0);
  runtime::Runtime runtime(config, script.source_bandwidth,
                           script.initial_peers);
  runtime.run(script.events);
  const std::vector<runtime::StreamReport> drained = runtime.drain(6.0);
  EXPECT_FALSE(drained.empty());
  ASSERT_GT(runtime.stream_log().size(), drained.size());  // closes happened
  ASSERT_GT(runtime.metrics().counter("dataplane.delivered"), 1000u);

  int judged = 0;
  for (const runtime::StreamReport& report : runtime.stream_log()) {
    // Streams too short to emit a meaningful number of chunks don't make
    // a ratio worth judging.
    if (report.expected_chunks < 10.0) continue;
    ++judged;
    EXPECT_GE(report.sustained_ratio, 0.85)
        << "channel " << report.channel << " open at " << report.open_time;
    EXPECT_TRUE(report.rate_within_verified) << "channel " << report.channel;
  }
  EXPECT_GT(judged, 0);
  EXPECT_EQ(runtime.metrics().counter("dataplane.rate_audit_failures"), 0u);
  // The churn actually exercised live patching.
  EXPECT_GT(runtime.metrics().counter("repairs.incremental") +
                runtime.metrics().counter("repairs.full"),
            0u);
}

TEST(DataPlaneAcceptance, ReplayIsIdenticalAcrossRunsAndThreadCounts) {
  const runtime::ScenarioScript script = churn_script(11);
  struct Outcome {
    std::string snapshot;
    std::vector<runtime::StreamReport> streams;
  };
  const auto run = [&](std::size_t planner_threads) {
    runtime::Runtime runtime(execution_config(planner_threads),
                             script.source_bandwidth, script.initial_peers);
    runtime.run(script.events);
    runtime.drain(6.0);
    return Outcome{runtime.metrics().snapshot().to_string(false),
                   runtime.stream_log()};
  };
  const Outcome base = run(1);
  const Outcome again = run(1);
  const Outcome threaded = run(4);

  // Identical dataplane.* metric snapshots (timing.* excluded) across two
  // runs and across planner thread counts...
  EXPECT_EQ(base.snapshot, again.snapshot);
  EXPECT_EQ(base.snapshot, threaded.snapshot);
  EXPECT_NE(base.snapshot.find("counter dataplane.delivered"),
            std::string::npos);
  EXPECT_NE(base.snapshot.find("histogram dataplane.chunk_latency"),
            std::string::npos);

  // ... and identical per-stream outcomes, chunk for chunk.
  ASSERT_EQ(base.streams.size(), threaded.streams.size());
  for (std::size_t i = 0; i < base.streams.size(); ++i) {
    const runtime::StreamReport& a = base.streams[i];
    const runtime::StreamReport& b = threaded.streams[i];
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.emitted, b.emitted);
    EXPECT_EQ(a.delivered_chunks, b.delivered_chunks);
    EXPECT_DOUBLE_EQ(a.sustained_ratio, b.sustained_ratio);
    EXPECT_DOUBLE_EQ(a.achieved_rate, b.achieved_rate);
  }
}

TEST(DataPlaneAcceptance, PerNodeCompletionTimesReplayIdentically) {
  // Two independent executions of the same planned overlay: every node's
  // completion time must match to the bit.
  util::Xoshiro256 rng(5);
  const Instance platform =
      gen::random_instance({120, 0.6, gen::Dist::kUnif100}, rng);
  const AcyclicSolution solution = solve_acyclic(platform);
  ExecutionConfig config;
  config.chunk_size = solution.throughput * 0.05;
  config.total_chunks = 200;
  config.emission_rate = solution.throughput;
  config.loss_rate = 0.05;  // loss in the mix: the rng must replay too
  config.seed = 31;
  const auto run = [&] {
    Execution exec(platform, solution.scheme, config);
    exec.run_to_completion();
    return exec;
  };
  const Execution first = run();
  const Execution second = run();
  ASSERT_EQ(first.num_nodes(), second.num_nodes());
  for (int node = 1; node < first.num_nodes(); ++node) {
    EXPECT_DOUBLE_EQ(first.completion_time(node), second.completion_time(node))
        << "node " << node;
  }
  EXPECT_EQ(first.losses(), second.losses());
  EXPECT_EQ(first.hol_stalls(), second.hol_stalls());
}

}  // namespace
}  // namespace bmp::dataplane
