// Worst-case family tests (§VI + appendices): the 5/7 instance is exactly
// tight at eps = 1/14, Theorem 6.3's asymptotic ceiling, the Fig. 6 degree
// blow-up, tight homogeneous instances, and the executable 3-PARTITION
// reduction of Theorem 3.1.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/exact.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/lp/throughput_lp.hpp"
#include "bmp/theory/instances.hpp"
#include "bmp/theory/np_gadget.hpp"

namespace bmp::theory {
namespace {

using util::Rational;

TEST(Fig18, SigmaWordThroughputsMatchPaperFormulas) {
  // T*_ac(sigma1 = OGG) = (2/3)(1+eps); T*_ac(sigma2 = GOG) = 3/4 - eps/2.
  for (const Rational eps : {Rational(0), Rational(1, 20), Rational(1, 14),
                             Rational(1, 10), Rational(1, 5)}) {
    const RationalInstance inst = fig18_rational(eps);
    const Rational two_thirds(2, 3);
    EXPECT_EQ(word_throughput_exact(inst, make_word("OGG")),
              two_thirds * (Rational(1) + eps))
        << "eps=" << eps;
    EXPECT_EQ(word_throughput_exact(inst, make_word("GOG")),
              Rational(3, 4) - eps / Rational(2))
        << "eps=" << eps;
  }
}

TEST(Fig18, ExactlyFiveSeventhsAtWorstEps) {
  const RationalInstance inst = fig18_rational(fig18_worst_eps());
  const ExactAcyclic best = optimal_acyclic_exact(inst);
  EXPECT_EQ(best.throughput, Rational(5, 7));
  EXPECT_EQ(cyclic_upper_bound(inst), Rational(1));
}

TEST(Fig18, WorstEpsIsTheMinimumOverEps) {
  const Rational worst = optimal_acyclic_exact(fig18_rational(fig18_worst_eps()))
                             .throughput;
  for (std::int64_t num = 0; num <= 20; ++num) {
    const Rational eps(num, 50);
    if (eps >= Rational(1, 2)) continue;
    const Rational t = optimal_acyclic_exact(fig18_rational(eps)).throughput;
    EXPECT_GE(t, worst) << "eps=" << eps;
  }
}

TEST(Fig18, GreedySearchAgreesWithExact) {
  const double t =
      optimal_acyclic_throughput(fig18_instance(1.0 / 14.0));
  EXPECT_NEAR(t, 5.0 / 7.0, 1e-9);
  EXPECT_NEAR(five_sevenths(), 5.0 / 7.0, 1e-15);
}

TEST(Thm63, ConstantsMatchFormulas) {
  EXPECT_NEAR(thm63_alpha(), 0.42539052, 1e-7);
  EXPECT_NEAR(thm63_limit_ratio(), 0.92539052, 1e-7);
  // f_alpha(2) = g_alpha(3) = (1+sqrt(41))/8 at alpha*.
  const double a = thm63_alpha();
  EXPECT_NEAR((a * 2 + 1) / 2, thm63_limit_ratio(), 1e-12);
  EXPECT_NEAR((a * 3 + 1 / a + 1) / 5, thm63_limit_ratio(), 1e-12);
}

TEST(Thm63, InstanceRatioStaysBelowLimit) {
  for (int k = 1; k <= 4; ++k) {
    const Instance inst = thm63_instance(k);
    EXPECT_NEAR(cyclic_upper_bound(inst), 1.0, 1e-9);
    const double t_ac = optimal_acyclic_throughput(inst);
    EXPECT_LE(t_ac, thm63_limit_ratio() + 5e-3) << "k=" << k;
    EXPECT_GE(t_ac, five_sevenths() - 1e-9) << "k=" << k;
  }
}

TEST(Fig6, ClosedFormIsOneAndLpAgrees) {
  for (const int m : {2, 3, 4}) {
    const Instance inst = fig6_instance(m);
    EXPECT_NEAR(cyclic_upper_bound(inst), 1.0, 1e-12);
    const auto lp = lp::cyclic_optimal_lp(inst);
    ASSERT_EQ(lp.status, lp::Status::kOptimal);
    EXPECT_NEAR(lp.throughput, 1.0, 1e-6) << "m=" << m;
  }
}

TEST(Fig6, OptimalSchemeNeedsSourceDegreeM) {
  // The analytic optimal scheme: source sends 1/m to each guarded node,
  // C1 tops each up with (m-1)/m, every guarded node returns 1/m to C1.
  for (const int m : {2, 3, 5, 8}) {
    const Instance inst = fig6_instance(m);
    BroadcastScheme s(inst.size());
    for (int g = 2; g <= m + 1; ++g) {
      s.add(0, g, 1.0 / m);
      s.add(1, g, (m - 1.0) / m);
      s.add(g, 1, 1.0 / m);
    }
    ASSERT_TRUE(s.validate(inst).empty());
    EXPECT_LE(s.max_inflow_deviation(1.0), 1e-9);
    EXPECT_NEAR(flow::scheme_throughput(s), 1.0, 1e-9);
    EXPECT_EQ(s.out_degree(0), m);  // vs ceil(b0/T*) = 1
    // Low-degree acyclic solutions must therefore lose throughput:
    EXPECT_LT(optimal_acyclic_throughput(inst), 1.0 - 1e-6);
  }
}

TEST(TightHomogeneous, IsTightAndNormalized) {
  for (const int n : {1, 3, 10}) {
    for (const int m : {1, 2, 12}) {
      for (const double frac : {0.0, 0.5, 1.0}) {
        const Instance inst = tight_homogeneous(n, m, frac * n);
        EXPECT_EQ(inst.n(), n);
        EXPECT_EQ(inst.m(), m);
        EXPECT_NEAR(cyclic_upper_bound(inst), 1.0, 1e-9);
        EXPECT_NEAR(inst.total_sum(), n + m, 1e-9);
      }
    }
  }
  EXPECT_THROW(tight_homogeneous(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(tight_homogeneous(1, 1, 5.0), std::invalid_argument);
}

TEST(TightHomogeneous, RationalVariantIsExact) {
  const RationalInstance inst = tight_homogeneous_rational(3, 2, Rational(1, 2));
  EXPECT_EQ(cyclic_upper_bound(inst), Rational(1));
  EXPECT_EQ(inst.b(1), Rational(1, 2));   // (2-1+1/2)/3
  EXPECT_EQ(inst.b(4), Rational(5, 4));   // (3-1/2)/2
}

TEST(TightHomogeneous, OpenOnlyVariant) {
  const Instance inst = tight_homogeneous_open(4);
  EXPECT_NEAR(cyclic_open_optimal(inst), 1.0, 1e-12);
  // Theorem 6.1: acyclic loses exactly b_n/(b0+O) here.
  EXPECT_NEAR(acyclic_open_optimal(inst), 1.0 - (3.0 / 4.0) / 4.0, 1e-12);
}

TEST(NpGadget, WellFormedChecks) {
  const ThreePartition good{{3, 3, 4, 3, 3, 4}, 10};
  EXPECT_TRUE(good.well_formed());
  const ThreePartition bad_sum{{3, 3, 4, 3, 3, 3}, 10};
  EXPECT_FALSE(bad_sum.well_formed());
  const ThreePartition bad_window{{2, 4, 4, 3, 3, 4}, 10};
  EXPECT_FALSE(bad_window.well_formed());  // 2 <= T/4
}

TEST(NpGadget, SolvableInstanceYieldsDegreeOptimalScheme) {
  const ThreePartition tp{{3, 3, 4, 3, 3, 4}, 10};
  const auto triples = solve_three_partition(tp);
  ASSERT_TRUE(triples.has_value());
  const Instance inst = np_gadget_instance(tp);
  EXPECT_EQ(inst.n(), 8);  // 6 intermediates + 2 finals
  const BroadcastScheme s = scheme_from_three_partition(tp, *triples);
  EXPECT_TRUE(s.validate(inst).empty());
  EXPECT_LE(s.max_inflow_deviation(10.0), 1e-9);
  EXPECT_NEAR(flow::scheme_throughput(s), 10.0, 1e-9);
  // Degree optimality: o_i == ceil(b_i / T) for every sending node.
  EXPECT_EQ(s.out_degree(0), 6);  // ceil(60/10)
  for (int i = 1; i <= 6; ++i) EXPECT_EQ(s.out_degree(i), 1);
}

TEST(NpGadget, UnsolvableInstanceIsDetected) {
  // {6,6,6,6,7,9}, T = 20: triples can sum to 18,19,21,22 but never 20.
  const ThreePartition tp{{6, 6, 6, 6, 7, 9}, 20};
  ASSERT_TRUE(tp.well_formed());
  EXPECT_FALSE(solve_three_partition(tp).has_value());
}

TEST(NpGadget, LargerSolvableInstance) {
  // p = 3, T = 12, items in (3,6): {4,4,4} x3.
  const ThreePartition tp{{4, 4, 4, 4, 4, 4, 4, 4, 4}, 12};
  const auto triples = solve_three_partition(tp);
  ASSERT_TRUE(triples.has_value());
  const BroadcastScheme s = scheme_from_three_partition(tp, *triples);
  EXPECT_NEAR(flow::scheme_throughput(s), 12.0, 1e-9);
}

// Without the degree constraint the gadget is easy: its optimal throughput
// always equals T (the reduction's hardness comes from degrees alone).
TEST(NpGadget, ThroughputWithoutDegreeConstraintIsT) {
  const ThreePartition tp{{6, 6, 6, 6, 7, 9}, 20};  // even the unsolvable one
  const Instance inst = np_gadget_instance(tp);
  EXPECT_NEAR(cyclic_upper_bound(inst), 20.0, 1e-9);
  EXPECT_NEAR(optimal_acyclic_throughput(inst), 20.0, 1e-6);
}

}  // namespace
}  // namespace bmp::theory
