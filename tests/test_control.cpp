// Control-plane tests: hysteresis detector units, controller policy
// (quantized demotion, capacity estimation, probe backoff, no-flap bounds,
// drift escalation, byte-for-byte determinism), Session::adapt (capacity
// overrides, edge clamps, slot re-sorting, replan fallback), adaptive
// scenario compilation (brownouts, WAN link degradations, restores) — and
// the ISSUE 5 closed-loop acceptance: on a 500-node scenario where 10% of
// the nodes suffer a 4x effective-capacity brownout mid-stream, the
// adaptive runtime recovers the worst node to >= 0.85x of the
// post-brownout optimum while the frozen (non-adaptive) baseline stays
// far below it; every adapted scheme is flow-verified and replays are
// bit-identical across runs and planner thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bmp/control/controller.hpp"
#include "bmp/control/detector.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/engine/session.hpp"
#include "bmp/obs/flight_recorder.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"

namespace bmp {
namespace {

// ------------------------------------------------------------- detectors

TEST(HysteresisDetector, TripsOnConsecutiveWindowsOnly) {
  control::HysteresisDetector detector({0.8, 0.92, 3});
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_FALSE(detector.degraded());
  EXPECT_FALSE(detector.update(0.85));  // resets the below-count
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_FALSE(detector.update(0.5));
  EXPECT_TRUE(detector.update(0.5));  // third consecutive: trip
  EXPECT_TRUE(detector.degraded());
  EXPECT_EQ(detector.trips(), 1);
}

TEST(HysteresisDetector, OscillationAroundThresholdNeverFlips) {
  // The no-flap core: a signal alternating just below / just above the
  // enter threshold never accumulates the consecutive windows to trip.
  control::HysteresisDetector detector({0.85, 0.95, 2});
  for (int i = 0; i < 100; ++i) {
    detector.update(i % 2 == 0 ? 0.84 : 0.86);
  }
  EXPECT_FALSE(detector.degraded());
  EXPECT_EQ(detector.trips(), 0);
  // And between the thresholds nothing changes in either state.
  control::HysteresisDetector tripped({0.85, 0.95, 1});
  tripped.update(0.5);
  ASSERT_TRUE(tripped.degraded());
  for (int i = 0; i < 50; ++i) tripped.update(0.90);  // enter < 0.90 < exit
  EXPECT_TRUE(tripped.degraded());
  EXPECT_EQ(tripped.recoveries(), 0);
  EXPECT_TRUE(tripped.update(0.96));
  EXPECT_FALSE(tripped.degraded());
  EXPECT_EQ(tripped.recoveries(), 1);
}

TEST(HysteresisDetector, RejectsBadConfig) {
  EXPECT_THROW(control::HysteresisDetector({0.9, 0.8, 2}),
               std::invalid_argument);
  EXPECT_THROW(control::HysteresisDetector({0.5, 0.9, 0}),
               std::invalid_argument);
}

TEST(Ewma, SeedsOnFirstObservation) {
  control::Ewma ewma;
  EXPECT_FALSE(ewma.seeded());
  EXPECT_DOUBLE_EQ(ewma.value(0.7), 0.7);
  ewma.observe(0.5, 0.25);
  EXPECT_DOUBLE_EQ(ewma.value(), 0.5);  // seeded, not blended toward 1
  ewma.observe(1.0, 0.25);
  EXPECT_NEAR(ewma.value(), 0.625, 1e-12);
}

// ------------------------------------------------- controller (synthetic)

/// Synthetic single-sender world: node 1 uploads to node 2 over one edge,
/// both nodes deliver at the emission rate. `service(factor)` lets a test
/// model the proportional-throttle wire: observed service ratio is
/// effective / planned where planned tracks the controller's class.
class SyntheticFeed {
 public:
  explicit SyntheticFeed(control::ControllerConfig config)
      : config_(config), controller_(config) {}

  control::Directive tick(double service_ratio, double loss = 0.0) {
    now_ += config_.sample_interval;
    const double window = config_.sample_interval;
    const double rate = 1.0;  // planned pipe rate
    const int sends = 10;
    busy_ += sends * 1.0 / (rate * std::max(service_ratio, 1e-6));
    completed_ += sends * 1.0;
    sent_ += sends;
    lost_ += static_cast<std::uint64_t>(loss * sends);

    control::TickInputs inputs;
    inputs.now = now_;
    inputs.window = window;
    inputs.chunk_size = 0.01;
    inputs.expected_delta = window * 1.0;
    delivered_ += inputs.expected_delta;
    for (const int id : {1, 2}) {
      control::NodeSample node;
      node.id = id;
      node.nominal = 1.0;
      node.granted = controller_.factor(id);
      node.delivered = delivered_;
      node.judgeable = true;
      inputs.nodes.push_back(node);
    }
    control::EdgeSample edge;
    edge.from = 1;
    edge.to = 2;
    edge.rate = rate;
    edge.busy_time = busy_;
    edge.completed = completed_;
    edge.sent = sent_;
    edge.lost = lost_;
    inputs.edges.push_back(edge);
    return controller_.tick(inputs);
  }

  [[nodiscard]] const control::Controller& controller() const {
    return controller_;
  }
  [[nodiscard]] double now() const { return now_; }

 private:
  control::ControllerConfig config_;
  control::Controller controller_;
  double now_ = 0.0;
  double busy_ = 0.0;
  double completed_ = 0.0;
  double delivered_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
};

control::ControllerConfig fast_config() {
  control::ControllerConfig config;
  config.sample_interval = 0.5;
  config.ewma_alpha = 1.0;  // no smoothing: unit tests want exact signals
  config.egress = {0.85, 0.95, 2};
  config.action_cooldown = 0.75;
  config.restore_cooldown = 1.5;
  config.restore_grid = 1;
  return config;
}

TEST(Controller, DemotesToQuantizedEstimateOnTrip) {
  SyntheticFeed feed(fast_config());
  // Healthy windows first, then a 2x brownout: service ratio 0.5.
  feed.tick(1.0);
  feed.tick(1.0);
  control::Directive directive = feed.tick(0.5);
  EXPECT_EQ(directive.demotions, 0);  // one window below: not yet
  directive = feed.tick(0.5);  // second consecutive: trip + demote
  EXPECT_EQ(directive.demotions, 1);
  EXPECT_TRUE(directive.act);
  // planned load == nominal, so the estimate is the raw ratio, quantized.
  EXPECT_DOUBLE_EQ(feed.controller().factor(1), 0.5);
  EXPECT_DOUBLE_EQ(directive.factors.at(1), 0.5);
  EXPECT_EQ(feed.controller().factor(2), 1.0);
}

TEST(Controller, OscillatingSignalTriggersAtMostOneCyclePerCooldown) {
  // The satellite no-flap bar: a signal oscillating around the enter
  // threshold trips nothing at all (hysteresis + consecutive windows)...
  SyntheticFeed oscillating(fast_config());
  int actions = 0;
  for (int i = 0; i < 60; ++i) {
    const control::Directive d =
        oscillating.tick(i % 2 == 0 ? 0.84 : 0.86);
    actions += d.demotions + d.restores;
  }
  EXPECT_EQ(actions, 0);

  // ... and a *persistent* degradation, probed optimistically, costs at
  // most one demote/restore cycle per restore cooldown — fewer once the
  // exponential backoff kicks in.
  control::ControllerConfig config = fast_config();
  SyntheticFeed persistent(config);
  persistent.tick(1.0);
  int demotions = 0;
  int restores = 0;
  const int ticks = 80;  // 40 seconds
  for (int i = 0; i < ticks; ++i) {
    // The proportional-throttle wire: true capacity 0.5 of nominal, the
    // plan saturates the controller's current class.
    const double factor = persistent.controller().factor(1);
    const control::Directive d =
        persistent.tick(std::min(1.0, 0.5 / factor));
    demotions += d.demotions;
    restores += d.restores;
  }
  const double horizon = persistent.now();
  EXPECT_GE(restores, 1);  // it does probe
  EXPECT_LE(restores, static_cast<int>(horizon / config.restore_cooldown) + 1);
  EXPECT_LE(demotions, restores + 2);  // one demote per failed probe
  // Backoff: with doubling intervals the probe count over 40 s stays far
  // below the naive horizon / cooldown bound.
  EXPECT_LE(restores, 8);
  // The loop may end mid-probe; a few more degraded windows settle it back
  // on the true class.
  for (int i = 0; i < 6; ++i) {
    const double factor = persistent.controller().factor(1);
    persistent.tick(std::min(1.0, 0.5 / factor));
  }
  EXPECT_DOUBLE_EQ(persistent.controller().factor(1), 0.5);
}

TEST(Controller, RecoversAndRestoresAfterDegradationEnds) {
  SyntheticFeed feed(fast_config());
  feed.tick(1.0);
  feed.tick(0.4);
  feed.tick(0.4);  // trip + demote
  ASSERT_LT(feed.controller().factor(1), 1.0);
  // Degradation ends: the wire honors whatever the plan asks again.
  int restores = 0;
  for (int i = 0; i < 20; ++i) restores += feed.tick(1.0).restores;
  EXPECT_GE(restores, 1);
  EXPECT_DOUBLE_EQ(feed.controller().factor(1), 1.0);
}

TEST(Controller, DriftPastBoundEscalatesToReplan) {
  control::ControllerConfig config = fast_config();
  config.replan_drift = 0.05;
  SyntheticFeed feed(config);
  feed.tick(1.0);
  feed.tick(0.25);
  const control::Directive d = feed.tick(0.25);
  ASSERT_EQ(d.demotions, 1);
  // Node 1 carries half the granted total and dropped to class 0.25: the
  // directive moves ~37.5% of granted capacity — far past the 5% bound.
  EXPECT_GT(d.drift, config.replan_drift);
  EXPECT_TRUE(d.force_replan);
}

TEST(Controller, IdenticalInputsProduceIdenticalDirectives) {
  const auto run = [] {
    SyntheticFeed feed(fast_config());
    std::string log;
    for (int i = 0; i < 40; ++i) {
      const double service = i > 10 && i < 30 ? 0.45 : 1.0;
      const control::Directive d = feed.tick(service, i % 7 == 0 ? 0.1 : 0.0);
      log += std::to_string(d.demotions) + "," + std::to_string(d.restores) +
             "," + std::to_string(d.reroutes) + "," +
             std::to_string(d.stragglers) + "," +
             std::to_string(d.factors.size()) + ";";
    }
    return log;
  };
  EXPECT_EQ(run(), run());
}

TEST(Controller, RejectsBadConfig) {
  control::ControllerConfig config;
  config.sample_interval = 0.0;
  EXPECT_THROW(control::Controller{config}, std::invalid_argument);
  config = {};
  config.demote_floor = 0.0;
  EXPECT_THROW(control::Controller{config}, std::invalid_argument);
  config = {};
  config.capacity_classes = 0;
  EXPECT_THROW(control::Controller{config}, std::invalid_argument);
  config = {};
  config.restore_grid = 0;
  EXPECT_THROW(control::Controller{config}, std::invalid_argument);
}

// --------------------------------------------------------- Session::adapt

TEST(SessionAdapt, DemotesCapsRepairsAndVerifies) {
  engine::Planner planner;
  Instance instance(100.0, {60.0, 50.0, 40.0, 30.0}, {20.0, 10.0});
  engine::Session session(planner, instance);
  const double design = session.design_rate();
  ASSERT_GT(design, 0.0);

  // Halve two mid-class uploaders' effective capacity.
  engine::AdaptationRequest request;
  request.capacities.resize(
      static_cast<std::size_t>(session.instance().size()));
  for (int slot = 0; slot < session.instance().size(); ++slot) {
    request.capacities[static_cast<std::size_t>(slot)] =
        session.instance().b(slot) * (slot == 1 || slot == 2 ? 0.5 : 1.0);
  }
  const engine::ChurnOutcome outcome = session.adapt(request);
  EXPECT_EQ(outcome.departed, 0);
  EXPECT_GT(outcome.achieved_rate, 0.0);
  EXPECT_LT(outcome.achieved_rate, design + 1e-9);
  // The overlay in service respects the new caps...
  const Instance& updated = session.instance();
  for (int slot = 0; slot < updated.size(); ++slot) {
    EXPECT_LE(session.scheme().out_rate(slot), updated.b(slot) + 1e-7);
  }
  // ... and its rate was re-verified through the flow engine.
  EXPECT_GT(outcome.verify_calls, 0);
  const double verified = flow::scheme_throughput(session.scheme());
  EXPECT_NEAR(verified, session.current_rate(), 1e-6 * verified);
}

TEST(SessionAdapt, ForceReplanPlansTheEffectiveInstance) {
  engine::Planner planner;
  Instance instance(100.0, {60.0, 50.0, 40.0}, {20.0});
  engine::Session session(planner, instance);
  engine::AdaptationRequest request;
  request.force_replan = true;
  request.capacities = session.capacities();
  for (double& cap : request.capacities) cap *= 0.5;
  const engine::ChurnOutcome outcome = session.adapt(request);
  EXPECT_TRUE(outcome.full_replan);
  // Uniformly halved caps halve the optimum exactly.
  EXPECT_NEAR(session.design_rate(),
              engine::Planner::plan_uncached(session.instance(),
                                             engine::Algorithm::kAcyclic, 0)
                  .throughput,
              1e-9);
  EXPECT_NEAR(outcome.achieved_rate, session.current_rate(), 0.0);
}

TEST(SessionAdapt, EdgeLimitClampsAndPatchesAround) {
  engine::Planner planner;
  Instance instance(50.0, {40.0, 30.0, 20.0, 10.0}, {});
  engine::Session session(planner, instance);
  // Find a real edge to clamp.
  int from = -1, to = -1;
  double rate = 0.0;
  for (int i = 0; i < session.scheme().num_nodes() && from < 0; ++i) {
    for (const auto& [j, r] : session.scheme().out_edges(i)) {
      if (r > 1.0) { from = i; to = j; rate = r; break; }
    }
  }
  ASSERT_GE(from, 0);
  engine::AdaptationRequest request;
  request.capacities = session.capacities();
  request.edge_limits.emplace_back(from, to, rate * 0.25);
  const engine::ChurnOutcome outcome = session.adapt(request);
  EXPECT_GT(outcome.achieved_rate, 0.0);
  EXPECT_TRUE(flow::scheme_throughput(session.scheme()) > 0.0);
}

TEST(SessionAdapt, RejectsMalformedRequests) {
  engine::Planner planner;
  Instance instance(10.0, {5.0, 4.0}, {});
  engine::Session session(planner, instance);
  engine::AdaptationRequest request;
  request.capacities = {1.0};  // wrong size
  EXPECT_THROW(session.adapt(request), std::invalid_argument);
  request.capacities = session.capacities();
  request.edge_limits.emplace_back(0, 9, 1.0);  // unknown slot
  EXPECT_THROW(session.adapt(request), std::invalid_argument);
}

// ------------------------------------------------------ adaptive scenario

TEST(AdaptiveScenario, CompilesBrownoutAndRestoreEvents) {
  runtime::Scenario scenario(10.0, 5);
  scenario.source(500.0)
      .population({20, 0.5, gen::Dist::kUnif100})
      .population({10, 0.5, gen::Dist::kUnif100})
      .channel({0.0, -1.0, 1.0, 0.5});
  runtime::BrownoutSpec brownout;
  brownout.time = 2.0;
  brownout.duration = 3.0;
  brownout.fraction = 1.0;
  brownout.capacity_factor = 0.25;
  brownout.population_class = 1;  // ids 21..30
  scenario.brownout(brownout);
  const runtime::ScenarioScript script = scenario.build();

  std::vector<const runtime::Event*> degrades;
  for (const runtime::Event& event : script.events) {
    if (event.type == runtime::EventType::kDegrade) degrades.push_back(&event);
  }
  ASSERT_EQ(degrades.size(), 2u);  // start + restore
  EXPECT_DOUBLE_EQ(degrades[0]->time, 2.0);
  EXPECT_DOUBLE_EQ(degrades[1]->time, 5.0);
  EXPECT_EQ(degrades[0]->degrades.size(), 10u);  // the whole class
  for (const runtime::Degradation& d : degrades[0]->degrades) {
    EXPECT_GE(d.node, 21);
    EXPECT_LE(d.node, 30);
    EXPECT_TRUE(d.set_factor);
    EXPECT_DOUBLE_EQ(d.capacity_factor, 0.25);
  }
  for (const runtime::Degradation& d : degrades[1]->degrades) {
    EXPECT_TRUE(d.set_factor);
    EXPECT_DOUBLE_EQ(d.capacity_factor, 1.0);  // restore
  }
}

TEST(AdaptiveScenario, LinkDegradeRestoresClassProfile) {
  runtime::Scenario scenario(10.0, 5);
  runtime::NodeClassSpec wan{10, 0.5, gen::Dist::kUnif100};
  wan.wan = true;
  wan.profile = {0.01, 0.02, 0.0};
  scenario.source(500.0).population(wan);
  runtime::LinkDegradeSpec degrade;
  degrade.time = 1.0;
  degrade.duration = 2.0;
  degrade.fraction = 1.0;
  degrade.profile = {0.3, 0.1, 0.2};
  scenario.degrade_links(degrade);
  const runtime::ScenarioScript script = scenario.build();
  // Members carry the class profile from birth.
  for (const runtime::NodeSpec& peer : script.initial_peers) {
    EXPECT_TRUE(peer.wan);
    EXPECT_EQ(peer.profile, wan.profile);
  }
  std::vector<const runtime::Event*> degrades;
  for (const runtime::Event& event : script.events) {
    if (event.type == runtime::EventType::kDegrade) degrades.push_back(&event);
  }
  ASSERT_EQ(degrades.size(), 2u);
  EXPECT_TRUE(degrades[0]->degrades[0].set_profile);
  EXPECT_EQ(degrades[0]->degrades[0].profile, degrade.profile);
  // The restore goes back to the *class* profile, not to zero.
  EXPECT_TRUE(degrades[1]->degrades[0].set_profile);
  EXPECT_EQ(degrades[1]->degrades[0].profile, wan.profile);
}

// -------------------------------------------- closed-loop runtime behavior

runtime::ScenarioScript adaptive_script(int peers, double horizon,
                                        std::uint64_t seed) {
  runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, /*fraction=*/0.5});
  runtime::BrownoutSpec brownout;
  brownout.time = 3.0;
  brownout.duration = -1.0;  // persists to the horizon
  brownout.fraction = 0.10;
  brownout.capacity_factor = 0.25;
  scenario.brownout(brownout);
  return scenario.build();
}

/// Optimum of the platform as the brownout left it (channel share applied).
double post_brownout_optimum(const runtime::ScenarioScript& script,
                             double fraction) {
  std::vector<char> browned(script.initial_peers.size() + 1, 0);
  for (const runtime::Event& event : script.events) {
    if (event.type != runtime::EventType::kDegrade) continue;
    for (const runtime::Degradation& d : event.degrades) {
      browned[static_cast<std::size_t>(d.node)] = 1;
    }
    break;
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    const runtime::NodeSpec& peer = script.initial_peers[k];
    const double eff =
        peer.bandwidth * fraction * (browned[k + 1] ? 0.25 : 1.0);
    (peer.guarded ? guarded_bw : open_bw).push_back(eff);
  }
  Instance effective(script.source_bandwidth * fraction, std::move(open_bw),
                     std::move(guarded_bw));
  return engine::Planner::plan_uncached(effective,
                                        engine::Algorithm::kAcyclic, 0)
      .throughput;
}

runtime::RuntimeConfig adaptive_config(bool adaptive, double chunk,
                                       std::size_t planner_threads) {
  runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.planner.threads = planner_threads;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = chunk;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = adaptive;
  return config;
}

struct ClosedLoopOutcome {
  double worst_rate = 0.0;  ///< min per-node delivered rate, late window
  std::string snapshot;
  std::vector<runtime::ControlReport> log;
  std::uint64_t adaptations = 0;
  std::uint64_t verify_calls = 0;
};

ClosedLoopOutcome run_closed_loop(const runtime::ScenarioScript& script,
                                  bool adaptive, double chunk,
                                  std::size_t planner_threads, double probe_at,
                                  double horizon,
                                  obs::TraceSink* trace = nullptr,
                                  obs::FlightRecorder* recorder = nullptr) {
  runtime::RuntimeConfig config =
      adaptive_config(adaptive, chunk, planner_threads);
  config.trace = trace;
  config.recorder = recorder;
  runtime::Runtime rt(config, script.source_bandwidth, script.initial_peers);
  std::size_t next = 0;
  const auto run_until = [&](double t) {
    while (next < script.events.size() && script.events[next].time <= t) {
      rt.step(script.events[next++]);
    }
    runtime::Event marker;
    marker.type = runtime::EventType::kNodeJoin;  // empty: clock only
    marker.time = t;
    rt.step(marker);
  };
  const auto snapshot = [&] {
    const dataplane::Execution* exec = rt.execution(0);
    std::vector<int> delivered;
    for (int dp = 1; dp < exec->num_nodes(); ++dp) {
      delivered.push_back(exec->delivered(dp));
    }
    return delivered;
  };
  run_until(probe_at);
  const std::vector<int> before = snapshot();
  run_until(horizon);
  const std::vector<int> after = snapshot();

  ClosedLoopOutcome outcome;
  outcome.worst_rate = 1e300;
  for (std::size_t k = 0; k < before.size(); ++k) {
    outcome.worst_rate = std::min(
        outcome.worst_rate, (after[k] - before[k]) * chunk /
                                (horizon - probe_at));
  }
  EXPECT_TRUE(rt.validate().empty());
  EXPECT_EQ(rt.metrics().counter("dataplane.rate_audit_failures"), 0u);
  outcome.snapshot = rt.metrics().snapshot().to_string(false);
  outcome.log = rt.control_log();
  outcome.adaptations = rt.metrics().counter("control.repairs") +
                        rt.metrics().counter("control.replans");
  outcome.verify_calls = rt.metrics().counter("verify.calls");
  return outcome;
}

TEST(ControlAcceptance, BrownoutRecoveryBeats85PercentOfPostBrownoutOptimum) {
  const runtime::ScenarioScript script = adaptive_script(500, 24.0, 2026);
  const double optimum = post_brownout_optimum(script, 0.5);
  ASSERT_GT(optimum, 0.0);
  const double chunk = optimum / 40.0;

  const ClosedLoopOutcome adaptive =
      run_closed_loop(script, true, chunk, 0, 16.0, 24.0);
  const ClosedLoopOutcome frozen =
      run_closed_loop(script, false, chunk, 0, 16.0, 24.0);

  // The adaptive loop recovers the worst node past the bar; the frozen
  // plan leaves it starving at a fraction of the effective optimum.
  EXPECT_GE(adaptive.worst_rate, 0.85 * optimum);
  EXPECT_LT(frozen.worst_rate, 0.5 * optimum);
  EXPECT_LT(frozen.worst_rate, adaptive.worst_rate);

  // The loop actually closed: detections led to verified adaptations.
  EXPECT_GT(adaptive.adaptations, 0u);
  EXPECT_FALSE(adaptive.log.empty());
  // Every adapted scheme went through flow verification (repair verifier
  // or planner-side verify_plans): the runtime counted at least one
  // verification per adaptation.
  EXPECT_GE(adaptive.verify_calls, adaptive.adaptations);
  // The frozen runtime took no control actions at all.
  EXPECT_EQ(frozen.adaptations, 0u);
  EXPECT_TRUE(frozen.log.empty());

  // Causal audit: every acting directive explains itself — one evidence
  // record per demotion/restore/reroute (plus one for a replan
  // escalation), each naming its detector and a crossed threshold.
  for (const runtime::ControlReport& report : adaptive.log) {
    const std::size_t expected =
        static_cast<std::size_t>(report.demotions + report.restores +
                                 report.reroutes) +
        (report.replan ? 1u : 0u);
    ASSERT_FALSE(report.evidence.empty());
    EXPECT_EQ(report.evidence.size(), expected);
    for (const control::Evidence& ev : report.evidence) {
      EXPECT_STRNE(ev.detector, "");
      EXPECT_STRNE(ev.action, "");
      EXPECT_GT(ev.threshold, 0.0);
      if (std::string(ev.action) == "demote") {
        EXPECT_GE(ev.node, 0);
        EXPECT_LT(ev.factor_after, ev.factor_before);
        EXPECT_GT(ev.estimate, 0.0);
      } else if (std::string(ev.action) == "restore") {
        EXPECT_GE(ev.node, 0);
        EXPECT_GT(ev.factor_after, ev.factor_before);
      } else if (std::string(ev.action) == "clamp") {
        EXPECT_GE(ev.from, 0);
        EXPECT_GE(ev.to, 0);
        EXPECT_LE(ev.estimate, ev.factor_before);
      } else {
        EXPECT_STREQ(ev.action, "replan");
        EXPECT_GT(ev.drift, ev.threshold);
      }
    }
  }
}

TEST(ControlAcceptance, TraceAndRecorderReplayByteIdentically) {
  // ISSUE 6: two runs of the 500-node acceptance scenario must produce
  // byte-identical traces and identical flight-recorder contents — the
  // cross-layer observability sits entirely on the deterministic side.
  const runtime::ScenarioScript script = adaptive_script(500, 24.0, 2026);
  const double optimum = post_brownout_optimum(script, 0.5);
  const double chunk = optimum / 40.0;

  obs::TraceSink trace_a;
  obs::FlightRecorder recorder_a;
  obs::TraceSink trace_b;
  obs::FlightRecorder recorder_b;
  const ClosedLoopOutcome a =
      run_closed_loop(script, true, chunk, 0, 16.0, 24.0, &trace_a,
                      &recorder_a);
  const ClosedLoopOutcome b =
      run_closed_loop(script, true, chunk, 0, 16.0, 24.0, &trace_b,
                      &recorder_b);
  EXPECT_EQ(a.snapshot, b.snapshot);

  // The trace saw every layer act and replays to the byte.
  EXPECT_GT(trace_a.spans(), 0u);
  EXPECT_EQ(trace_a.dropped(), 0u);
  const std::string json_a = trace_a.to_json();
  EXPECT_EQ(json_a, trace_b.to_json());
  EXPECT_NE(json_a.find("\"verify\""), std::string::npos);
  EXPECT_NE(json_a.find("\"adapt\""), std::string::npos);
  EXPECT_NE(json_a.find("\"directive\""), std::string::npos);
  EXPECT_NE(json_a.find("\"demote\""), std::string::npos);

  // Same for the flight recorder: same decisions, same rings, same bytes.
  EXPECT_GT(recorder_a.recorded(), 0u);
  EXPECT_EQ(recorder_a.to_json(), recorder_b.to_json());
  EXPECT_FALSE(recorder_a.channel_events(0).empty());
}

TEST(ControlAcceptance, ReplaysBitIdenticallyAcrossRunsAndThreadCounts) {
  // Smaller platform, same shape: the determinism contract must hold for
  // the full adaptive pipeline (telemetry -> detectors -> directives ->
  // adapt -> live patch), independent of planner threading.
  const runtime::ScenarioScript script = adaptive_script(150, 14.0, 11);
  const double optimum = post_brownout_optimum(script, 0.5);
  const double chunk = optimum / 40.0;

  const ClosedLoopOutcome base =
      run_closed_loop(script, true, chunk, 1, 10.0, 14.0);
  const ClosedLoopOutcome again =
      run_closed_loop(script, true, chunk, 1, 10.0, 14.0);
  const ClosedLoopOutcome threaded =
      run_closed_loop(script, true, chunk, 4, 10.0, 14.0);

  EXPECT_EQ(base.snapshot, again.snapshot);
  EXPECT_EQ(base.snapshot, threaded.snapshot);
  EXPECT_NE(base.snapshot.find("counter control.samples"), std::string::npos);

  ASSERT_EQ(base.log.size(), threaded.log.size());
  for (std::size_t i = 0; i < base.log.size(); ++i) {
    const runtime::ControlReport& a = base.log[i];
    const runtime::ControlReport& b = threaded.log[i];
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.restores, b.restores);
    EXPECT_EQ(a.reroutes, b.reroutes);
    EXPECT_EQ(a.full_replan, b.full_replan);
    EXPECT_DOUBLE_EQ(a.rate_after, b.rate_after);
    EXPECT_DOUBLE_EQ(a.drift, b.drift);
  }
  EXPECT_DOUBLE_EQ(base.worst_rate, threaded.worst_rate);
}

TEST(ControlRuntime, RequiresExecutionMode) {
  runtime::RuntimeConfig config;
  config.control.enabled = true;  // but dataplane.execute left off
  EXPECT_THROW(runtime::Runtime(config, 100.0, {{50.0, false}}),
               std::invalid_argument);
}

TEST(ControlRuntime, DegradeEventsValidateAndApply) {
  runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = 2.0;
  std::vector<runtime::NodeSpec> peers(6);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    peers[i].bandwidth = 40.0 + static_cast<double>(i);
  }
  runtime::Runtime rt(config, 200.0, peers);
  runtime::Event open;
  open.type = runtime::EventType::kChannelOpen;
  open.channel = 0;
  open.fraction = 0.5;
  rt.step(open);

  runtime::Event degrade;
  degrade.type = runtime::EventType::kDegrade;
  degrade.time = 1.0;
  runtime::Degradation d;
  d.node = 2;
  d.set_factor = true;
  d.capacity_factor = 0.5;
  degrade.degrades.push_back(d);
  rt.step(degrade);
  EXPECT_EQ(rt.metrics().counter("degrade.nodes"), 1u);
  EXPECT_EQ(rt.metrics().counter("events.degrade"), 1u);

  runtime::Event bad;
  bad.type = runtime::EventType::kDegrade;
  bad.time = 2.0;
  runtime::Degradation invalid;
  invalid.node = 0;  // the source cannot degrade
  invalid.set_factor = true;
  invalid.capacity_factor = 0.5;
  bad.degrades.push_back(invalid);
  EXPECT_THROW(rt.step(bad), std::invalid_argument);
}

}  // namespace
}  // namespace bmp
