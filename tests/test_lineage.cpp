// Lineage + SLO tests (ISSUE 9): the critical-path analyzer's blame-sum
// invariant on hand-built delivery DAGs, LineageSink JSON round-trips and
// bounded-capacity drop accounting, the SloMonitor multi-window burn-rate
// state machine (ok -> warn -> page -> ok on synthetic SLI feeds) — and
// the acceptance bar: two closed-loop runs of the 500-node adaptive
// brownout scenario with lineage and the SLO monitor enabled produce
// byte-identical lineage dumps, blame tables and SLO alert sequences
// across planner thread counts 1 vs 4, with the blame table's attributed
// segments summing to the last node's completion time within 1e-6.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/obs/lineage.hpp"
#include "bmp/obs/slo.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"

namespace bmp {
namespace {

// ------------------------------------------------------- analyzer units

obs::HopRecord make_hop(int chunk, int from, int to, double start,
                        double finish, int retransmits = 0,
                        double loss_time = 0.0, bool hol = false) {
  obs::HopRecord hop;
  hop.chunk = chunk;
  hop.from = from;
  hop.to = to;
  hop.channel = 0;
  hop.start = start;
  hop.finish = finish;
  hop.retransmits = retransmits;
  hop.loss_time = loss_time;
  hop.hol_stalled = hol;
  return hop;
}

TEST(CriticalPath, BlameSegmentsSumToCompletionExactly) {
  obs::LineageSink sink;
  // Chunk 0 emitted at t=0.5, delivered 0 -> 1 -> 2; node 2 finishes last.
  sink.record_emit(0, 0, /*chunk=*/0, 0.5);
  // 0 -> 1: two failed attempts burned 0.3s, success at [1.0, 2.0].
  sink.record(make_hop(0, 0, 1, 1.0, 2.0, /*retransmits=*/2, 0.3));
  // 1 -> 2: receiver-window stall before the [3.0, 5.0] transmission.
  sink.record(make_hop(0, 1, 2, 3.0, 5.0, 0, 0.0, /*hol=*/true));
  // Decoy chunk on the same channel, finishing well before chunk 0.
  sink.record_emit(0, 0, /*chunk=*/1, 0.0);
  sink.record(make_hop(1, 0, 1, 0.2, 0.8));

  const obs::BlameTable table = obs::analyze_critical_path(sink.hops());
  ASSERT_TRUE(table.valid);
  EXPECT_EQ(table.channel, 0);
  EXPECT_EQ(table.last_node, 2);
  EXPECT_EQ(table.critical_chunk, 0);
  EXPECT_DOUBLE_EQ(table.completion_time, 5.0);
  EXPECT_DOUBLE_EQ(table.emit_delay, 0.5);
  ASSERT_EQ(table.path.size(), 2u);

  // Hop 0 -> 1: enqueue resolved to the emit time; the pre-transmission
  // gap [0.5, 1.0] splits into 0.3 retransmit loss + 0.2 queue wait.
  const obs::PathSegment& first = table.path[0];
  EXPECT_DOUBLE_EQ(first.enqueue, 0.5);
  EXPECT_DOUBLE_EQ(first.queue_wait, 0.2);
  EXPECT_DOUBLE_EQ(first.retransmit_loss, 0.3);
  EXPECT_DOUBLE_EQ(first.transmit, 1.0);
  EXPECT_DOUBLE_EQ(first.sched_stall, 0.0);

  // Hop 1 -> 2: enqueue == parent finish; the HOL flag routes the whole
  // [2.0, 3.0] gap to sched_stall instead of queue_wait.
  const obs::PathSegment& second = table.path[1];
  EXPECT_DOUBLE_EQ(second.enqueue, 2.0);
  EXPECT_DOUBLE_EQ(second.queue_wait, 0.0);
  EXPECT_DOUBLE_EQ(second.sched_stall, 1.0);
  EXPECT_DOUBLE_EQ(second.transmit, 2.0);

  // The telescoping invariant, exactly: emit delay plus every segment's
  // four components equals the last node's completion time.
  EXPECT_DOUBLE_EQ(table.attributed_total, table.completion_time);

  // Blame rows sort by attributed delay: the stalled 1->2 edge leads.
  ASSERT_EQ(table.edges.size(), 2u);
  EXPECT_EQ(table.edges[0].key, "1->2");
  EXPECT_DOUBLE_EQ(table.edges[0].delay, 3.0);
  EXPECT_EQ(table.edges[1].key, "0->1");
  EXPECT_DOUBLE_EQ(table.edges[1].delay, 1.5);
  ASSERT_EQ(table.nodes.size(), 2u);
  EXPECT_EQ(table.nodes[0].key, "1");
}

TEST(CriticalPath, EmptySinkYieldsInvalidTable) {
  const obs::BlameTable table = obs::analyze_critical_path({});
  EXPECT_FALSE(table.valid);
}

// ------------------------------------------------------------ sink units

TEST(LineageSink, JsonRoundTripPreservesHopsAndBlame) {
  obs::LineageSink sink;
  sink.record_emit(3, 0, 0, 0.25);
  sink.record(make_hop(0, 0, 1, 0.5, 1.5, 1, 0.2));
  sink.record(make_hop(0, 1, 2, 2.0, 2.75, 0, 0.0, true));

  std::vector<obs::HopRecord> parsed;
  std::uint64_t dropped = 99;
  ASSERT_TRUE(obs::parse_lineage_json(sink.to_json(), parsed, dropped));
  EXPECT_EQ(dropped, 0u);
  const std::vector<obs::HopRecord>& original = sink.hops();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t k = 0; k < parsed.size(); ++k) {
    EXPECT_EQ(parsed[k].chunk, original[k].chunk);
    EXPECT_EQ(parsed[k].from, original[k].from);
    EXPECT_EQ(parsed[k].to, original[k].to);
    EXPECT_EQ(parsed[k].channel, original[k].channel);
    EXPECT_DOUBLE_EQ(parsed[k].enqueue, original[k].enqueue);
    EXPECT_DOUBLE_EQ(parsed[k].start, original[k].start);
    EXPECT_DOUBLE_EQ(parsed[k].finish, original[k].finish);
    EXPECT_EQ(parsed[k].retransmits, original[k].retransmits);
    EXPECT_DOUBLE_EQ(parsed[k].loss_time, original[k].loss_time);
    EXPECT_EQ(parsed[k].hol_stalled, original[k].hol_stalled);
    EXPECT_EQ(parsed[k].overtake, original[k].overtake);
  }
  // The analyzer reaches the same blame table from the parsed dump — what
  // tools/lineage_report relies on.
  EXPECT_EQ(obs::analyze_critical_path(parsed).to_json(),
            obs::analyze_critical_path(original).to_json());
}

TEST(LineageSink, DropsPastCapButKeepsAvailabilityRoots) {
  obs::LineageConfig config;
  config.max_hops = 1;
  obs::LineageSink sink(config);
  sink.record_emit(0, 0, 0, 0.0);
  sink.record(make_hop(0, 0, 1, 0.0, 1.0));  // kept
  sink.record(make_hop(0, 1, 2, 1.5, 2.0));  // dropped (cap)
  sink.record(make_hop(0, 2, 3, 2.5, 3.0));  // dropped (cap)
  EXPECT_EQ(sink.recorded(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.hops().size(), 1u);
  // A dropped delivery still roots its receiver's availability, so later
  // readers see when node 2 first held chunk 0 — not the fallback.
  EXPECT_DOUBLE_EQ(sink.available_at(0, 2, 0, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(sink.available_at(0, 1, 0, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(sink.available_at(0, 9, 0, -1.0), -1.0);

  // clear() re-arms everything, including the drop counter.
  sink.clear();
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.hops().empty());
}

// ------------------------------------------------------------- SLO units

TEST(SloMonitor, BurnRateWalksOkWarnPageAndBack) {
  // Defaults: short window 4, long window 12, warn 0.5, page 0.75,
  // sustained floor 0.7. Four good ticks, four bad, three good:
  //   tick 5: short burn 0.50          -> warn
  //   tick 7: short 1.00, long 0.50    -> page
  //   tick 8: short 0.75, long < 0.50  -> back to warn
  //   tick 10: short 0.25              -> ok
  obs::SloMonitor monitor(0, obs::SloConfig{});
  const auto feed = [&](obs::SloMonitor& m) {
    int tick = 0;
    for (int k = 0; k < 4; ++k) m.evaluate(tick++, 0.9);
    for (int k = 0; k < 4; ++k) m.evaluate(tick++, 0.2);
    for (int k = 0; k < 3; ++k) m.evaluate(tick++, 0.9);
  };
  feed(monitor);

  EXPECT_EQ(monitor.state(), obs::SloState::kOk);
  EXPECT_EQ(monitor.pages(), 1u);
  EXPECT_EQ(monitor.warns(), 2u);
  EXPECT_EQ(monitor.ticks(), 11u);
  EXPECT_EQ(monitor.dropped_alerts(), 0u);
  ASSERT_EQ(monitor.alerts().size(), 4u);
  const std::vector<obs::SloAlert>& alerts = monitor.alerts();
  EXPECT_EQ(alerts[0].to, obs::SloState::kWarn);
  EXPECT_EQ(alerts[0].time, 5.0);
  EXPECT_EQ(alerts[0].sli, "sustained");
  EXPECT_EQ(alerts[1].to, obs::SloState::kPage);
  EXPECT_EQ(alerts[1].time, 7.0);
  EXPECT_EQ(alerts[2].to, obs::SloState::kWarn);
  EXPECT_EQ(alerts[2].sli, "clear");
  EXPECT_EQ(alerts[3].to, obs::SloState::kOk);
  EXPECT_EQ(alerts[3].time, 10.0);

  // The alert stream is deterministic: an identically fed monitor renders
  // a byte-identical alerts_json().
  obs::SloMonitor replay(0, obs::SloConfig{});
  feed(replay);
  EXPECT_EQ(monitor.alerts_json(), replay.alerts_json());
}

TEST(SloMonitor, LatencySliLabelsTheAlert) {
  obs::SloMonitor monitor(1, obs::SloConfig{});
  for (int k = 0; k < 8; ++k) monitor.observe_latency(10.0);  // p99 >> 5.0
  for (int k = 0; k < 8; ++k) monitor.evaluate(k, /*sustained=*/0.95);
  EXPECT_GE(monitor.warns() + monitor.pages(), 1u);
  ASSERT_FALSE(monitor.alerts().empty());
  EXPECT_EQ(monitor.alerts()[0].sli, "latency_p99");
}

// ----------------------------------------------- chunk sampling (ISSUE 10)

TEST(LineageSampling, GatesWholeChunkDags) {
  obs::LineageConfig config;
  config.sample_mod = 4;
  obs::LineageSink sink(config);
  // 64 chunks, each a two-hop chain 0 -> 1 -> 2.
  for (int chunk = 0; chunk < 64; ++chunk) {
    sink.record_emit(0, 0, chunk, 0.1 * chunk);
    sink.record(make_hop(chunk, 0, 1, 0.1 * chunk + 0.1, 0.1 * chunk + 0.2));
    sink.record(make_hop(chunk, 1, 2, 0.1 * chunk + 0.3, 0.1 * chunk + 0.4));
  }
  EXPECT_EQ(sink.recorded(), 128u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_GT(sink.sampled_out(), 0u);
  EXPECT_EQ(sink.sampled_out() + sink.hops().size(), 128u);
  // Whole-DAG property: a retained chunk keeps BOTH its hops (and its
  // emission root, so the first hop's enqueue resolves to the emit time,
  // not the start-time fallback).
  std::map<int, int> hops_per_chunk;
  for (const obs::HopRecord& hop : sink.hops()) ++hops_per_chunk[hop.chunk];
  EXPECT_FALSE(hops_per_chunk.empty());
  for (const auto& [chunk, count] : hops_per_chunk) {
    EXPECT_EQ(count, 2) << "chunk " << chunk << " lost part of its DAG";
    EXPECT_TRUE(sink.sampled(0, chunk));
  }
  for (const obs::HopRecord& hop : sink.hops()) {
    if (hop.from == 0) {
      EXPECT_DOUBLE_EQ(hop.enqueue, 0.1 * hop.chunk);
    }
  }
  // Determinism: an identically configured sink fed the same stream dumps
  // identical bytes.
  obs::LineageSink replay(config);
  for (int chunk = 0; chunk < 64; ++chunk) {
    replay.record_emit(0, 0, chunk, 0.1 * chunk);
    replay.record(make_hop(chunk, 0, 1, 0.1 * chunk + 0.1, 0.1 * chunk + 0.2));
    replay.record(make_hop(chunk, 1, 2, 0.1 * chunk + 0.3, 0.1 * chunk + 0.4));
  }
  EXPECT_EQ(sink.to_json(), replay.to_json());
}

TEST(LineageSampling, AutoResampleBoundsMemoryDeterministically) {
  obs::LineageConfig config;
  config.auto_sample_target = 64;
  obs::LineageSink sink(config);
  for (int chunk = 0; chunk < 4000; ++chunk) {
    sink.record_emit(0, 0, chunk, 0.001 * chunk);
    sink.record(make_hop(chunk, 0, 1, 0.001 * chunk, 0.001 * chunk + 0.5));
  }
  // Memory stayed inside the budget and the factor tightened to a power of
  // two > 1; nothing fell to the capacity drop counter.
  EXPECT_LE(sink.hops().size(), 64u);
  EXPECT_GT(sink.sample_mod(), 1u);
  EXPECT_EQ(sink.sample_mod() & (sink.sample_mod() - 1), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.sampled_out() + sink.hops().size(), 4000u);

  // The retained set is a pure function of the stream: a fresh sink
  // configured directly with the final factor retains exactly the same
  // hops (auto-resampling only decided the factor, not the membership).
  obs::LineageConfig fixed;
  fixed.sample_mod = sink.sample_mod();
  obs::LineageSink direct(fixed);
  for (int chunk = 0; chunk < 4000; ++chunk) {
    direct.record_emit(0, 0, chunk, 0.001 * chunk);
    direct.record(make_hop(chunk, 0, 1, 0.001 * chunk, 0.001 * chunk + 0.5));
  }
  EXPECT_EQ(sink.to_json(), direct.to_json());
}

TEST(LineageSampling, DumpCarriesFactorAndParsesBack) {
  obs::LineageConfig config;
  config.sample_mod = 8;
  obs::LineageSink sink(config);
  for (int chunk = 0; chunk < 256; ++chunk) {
    sink.record(make_hop(chunk, 0, 1, 1.0, 2.0));
  }
  std::vector<obs::HopRecord> hops;
  std::uint64_t dropped = 1;
  std::uint64_t sampled_out = 0;
  std::uint32_t sample_mod = 0;
  ASSERT_TRUE(obs::parse_lineage_json(sink.to_json(), hops, dropped,
                                      sampled_out, sample_mod));
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(sample_mod, 8u);
  EXPECT_EQ(sampled_out, sink.sampled_out());
  EXPECT_EQ(hops.size(), sink.hops().size());

  // The blame table carries the factor as an annotation in both renders.
  const obs::BlameTable table =
      obs::analyze_critical_path(hops, -1, 10, sample_mod);
  EXPECT_EQ(table.sample_mod, 8u);
  EXPECT_NE(table.to_json().find("\"sample_mod\":8"), std::string::npos);
  EXPECT_NE(table.to_text().find("1-in-8 chunk sample"), std::string::npos);

  // Pre-sampling dumps (no sample fields) still load, as factor 1.
  const std::string legacy =
      "{\"dropped\":3,\"hops\":[\n"
      "{\"chunk\":0,\"from\":0,\"to\":1,\"channel\":0,\"enqueue\":1,"
      "\"start\":1,\"finish\":2,\"retransmits\":0,\"loss_time\":0,"
      "\"hol\":0,\"overtake\":0}\n]}\n";
  ASSERT_TRUE(obs::parse_lineage_json(legacy, hops, dropped, sampled_out,
                                      sample_mod));
  EXPECT_EQ(dropped, 3u);
  EXPECT_EQ(sample_mod, 1u);
  EXPECT_EQ(sampled_out, 0u);
  ASSERT_EQ(hops.size(), 1u);
}

TEST(LineageSampling, RejectsNonPowerOfTwoFactor) {
  obs::LineageConfig config;
  config.sample_mod = 3;
  EXPECT_THROW(obs::LineageSink bad(config), std::invalid_argument);
}

// ---------------------------------------- closed-loop acceptance (ISSUE 9)

/// The 500-node adaptive brownout scenario from the control acceptance
/// test: two peer classes behind a half-share channel, 10% of the nodes
/// browned out 4x at t=3 for good.
runtime::ScenarioScript lineage_script(int peers, double horizon,
                                       std::uint64_t seed) {
  runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, /*fraction=*/0.5});
  runtime::BrownoutSpec brownout;
  brownout.time = 3.0;
  brownout.duration = -1.0;
  brownout.fraction = 0.10;
  brownout.capacity_factor = 0.25;
  scenario.brownout(brownout);
  return scenario.build();
}

/// Optimum of the platform as the brownout left it (channel share applied)
/// — sizes the chunk so the stream runs at a realistic operating point.
double post_brownout_optimum(const runtime::ScenarioScript& script,
                             double fraction) {
  std::vector<char> browned(script.initial_peers.size() + 1, 0);
  for (const runtime::Event& event : script.events) {
    if (event.type != runtime::EventType::kDegrade) continue;
    for (const runtime::Degradation& d : event.degrades) {
      browned[static_cast<std::size_t>(d.node)] = 1;
    }
    break;
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    const runtime::NodeSpec& peer = script.initial_peers[k];
    const double eff =
        peer.bandwidth * fraction * (browned[k + 1] ? 0.25 : 1.0);
    (peer.guarded ? guarded_bw : open_bw).push_back(eff);
  }
  Instance effective(script.source_bandwidth * fraction, std::move(open_bw),
                     std::move(guarded_bw));
  return engine::Planner::plan_uncached(effective,
                                        engine::Algorithm::kAcyclic, 0)
      .throughput;
}

struct LineageRun {
  std::string lineage_json;
  std::string blame_json;
  std::string alerts_json;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t slo_ticks = 0;
  double completion = 0.0;
  double attributed = 0.0;
  bool blame_valid = false;
};

LineageRun run_adaptive_with_lineage(const runtime::ScenarioScript& script,
                                     double chunk, double horizon,
                                     std::size_t planner_threads) {
  obs::LineageSink sink;
  runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.planner.threads = planner_threads;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = chunk;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = true;
  config.control.slo_enabled = true;
  config.lineage = &sink;
  runtime::Runtime rt(config, script.source_bandwidth, script.initial_peers);
  std::size_t next = 0;
  while (next < script.events.size() && script.events[next].time <= horizon) {
    rt.step(script.events[next++]);
  }
  runtime::Event marker;
  marker.type = runtime::EventType::kNodeJoin;  // empty: clock only
  marker.time = horizon;
  rt.step(marker);
  EXPECT_TRUE(rt.validate().empty());

  LineageRun run;
  run.lineage_json = sink.to_json();
  run.recorded = sink.recorded();
  run.dropped = sink.dropped();
  const obs::BlameTable blame = obs::analyze_critical_path(sink.hops());
  run.blame_json = blame.to_json();
  run.blame_valid = blame.valid;
  run.completion = blame.completion_time;
  run.attributed = blame.attributed_total;
  const obs::SloMonitor* slo = rt.slo_monitor(0);
  EXPECT_NE(slo, nullptr);
  if (slo != nullptr) {
    run.alerts_json = slo->alerts_json();
    run.slo_ticks = slo->ticks();
  }
  return run;
}

TEST(LineageAcceptance, ByteIdenticalAcrossPlannerThreads) {
  const runtime::ScenarioScript script = lineage_script(500, 24.0, 2026);
  const double optimum = post_brownout_optimum(script, 0.5);
  ASSERT_GT(optimum, 0.0);
  const double chunk = optimum / 40.0;

  const LineageRun one = run_adaptive_with_lineage(script, chunk, 24.0, 1);
  const LineageRun four = run_adaptive_with_lineage(script, chunk, 24.0, 4);

  // Both runs recorded a real stream, inside the sink's bound.
  EXPECT_GT(one.recorded, 0u);
  EXPECT_EQ(one.dropped, 0u);
  EXPECT_GT(one.slo_ticks, 0u);

  // The blame table attributes the whole completion time (the ISSUE 9
  // invariant: segments sum to the last node's completion within 1e-6).
  ASSERT_TRUE(one.blame_valid);
  EXPECT_GT(one.completion, 0.0);
  EXPECT_LE(std::fabs(one.attributed - one.completion), 1e-6);

  // Byte-identity across planner thread counts: the lineage dump, the
  // blame table and the SLO alert sequence replay exactly.
  EXPECT_EQ(one.recorded, four.recorded);
  EXPECT_TRUE(one.lineage_json == four.lineage_json)
      << "lineage dumps diverge across planner threads (sizes "
      << one.lineage_json.size() << " vs " << four.lineage_json.size() << ")";
  EXPECT_EQ(one.blame_json, four.blame_json);
  EXPECT_EQ(one.alerts_json, four.alerts_json);
}

}  // namespace
}  // namespace bmp
