// Fault-injection tests: the deterministic injector (compile / inject /
// random_plan), per-layer tolerance units (dataplane crash teardown and
// source failover, corruption checksums, partition drop + heal, the
// controller's stale-telemetry guard and heal pardon), runtime
// integration (crash detection from telemetry silence with cross-channel
// reclaim, blackout windows without false demotion, planner-outage
// fallback with retry), the ISSUE 8 headline acceptance — a seeded
// 500-node chaos storm where every survivor keeps completing, validate()
// stays clean, the worst survivor holds >= 0.80x the post-heal optimum
// and replays are bit-identical across runs and planner thread counts
// while the un-hardened baseline shows a materially worse clean floor —
// and a ~200-seed randomized chaos fuzz over small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bmp/control/controller.hpp"
#include "bmp/dataplane/execution.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/fault/fault.hpp"
#include "bmp/fault/injector.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"

namespace bmp {
namespace {

// --------------------------------------------------------------- injector

TEST(Injector, CompileSortsByTimeAndNumbersPartitionGroups) {
  fault::FaultPlan plan;
  plan.crashes.push_back({5.0, 3});
  plan.crashes.push_back({1.0, 7});
  fault::PartitionSpec partition;
  partition.time = 2.0;
  partition.heal_time = 4.0;
  partition.group_b = {2, 4};
  plan.partitions.push_back(partition);
  plan.planner_outages.push_back({3.0, 6.0});

  const std::vector<runtime::Event> events = fault::Injector::compile(plan);
  ASSERT_EQ(events.size(), 6u);  // 2 crashes + cut/heal + outage start/end
  for (std::size_t k = 1; k < events.size(); ++k) {
    EXPECT_LE(events[k - 1].time, events[k].time);
  }
  for (const runtime::Event& event : events) {
    EXPECT_EQ(event.type, runtime::EventType::kFault);
    ASSERT_EQ(event.faults.size(), 1u);
  }
  // The partition cut carries group 1 (numbered from 1) and its node list.
  const runtime::FaultAction& cut = events[1].faults[0];
  EXPECT_EQ(cut.kind, runtime::FaultAction::Kind::kPartitionStart);
  EXPECT_EQ(cut.group, 1);
  EXPECT_EQ(cut.nodes, (std::vector<int>{2, 4}));
  const runtime::FaultAction& heal = events[3].faults[0];
  EXPECT_EQ(heal.kind, runtime::FaultAction::Kind::kPartitionHeal);
}

TEST(Injector, InjectMergesStablyAndResequences) {
  runtime::Scenario scenario(10.0, 11);
  scenario.source(100.0)
      .population({8, 0.5, gen::Dist::kUnif100})
      .channel({0.0, -1.0, 1.0, 0.5});
  runtime::ScenarioScript script = scenario.build();
  const std::size_t base = script.events.size();

  fault::FaultPlan plan;
  plan.crashes.push_back({4.0, 2});
  plan.blackouts.push_back({2.0, 6.0, {3, 5}});
  fault::Injector::inject(script, plan);
  ASSERT_EQ(script.events.size(), base + 3);  // crash + blackout start/end
  for (std::size_t k = 0; k < script.events.size(); ++k) {
    EXPECT_EQ(script.events[k].sequence, static_cast<std::uint64_t>(k));
    if (k > 0) EXPECT_LE(script.events[k - 1].time, script.events[k].time);
  }

  // Injecting the identical plan into an identical base script reproduces
  // the stream exactly — chaos scripts replay like any other scenario.
  runtime::ScenarioScript again = scenario.build();
  fault::Injector::inject(again, plan);
  ASSERT_EQ(again.events.size(), script.events.size());
  for (std::size_t k = 0; k < script.events.size(); ++k) {
    EXPECT_EQ(again.events[k].time, script.events[k].time);
    EXPECT_EQ(again.events[k].type, script.events[k].type);
    EXPECT_EQ(again.events[k].faults.size(), script.events[k].faults.size());
  }
}

TEST(Injector, RandomPlanIsSeedDeterministicAndBounded) {
  fault::RandomPlanOptions options;
  options.num_nodes = 20;
  options.horizon = 10.0;
  const fault::FaultPlan a = fault::Injector::random_plan(9, options);
  const fault::FaultPlan b = fault::Injector::random_plan(9, options);
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t k = 0; k < a.crashes.size(); ++k) {
    EXPECT_EQ(a.crashes[k].time, b.crashes[k].time);
    EXPECT_EQ(a.crashes[k].node, b.crashes[k].node);
  }
  EXPECT_EQ(fault::Injector::compile(a).size(),
            fault::Injector::compile(b).size());

  bool any_difference = false;
  for (std::uint64_t seed = 0; seed < 8 && !any_difference; ++seed) {
    const fault::FaultPlan other = fault::Injector::random_plan(seed, options);
    any_difference = other.crashes.size() != a.crashes.size() ||
                     other.blackouts.size() != a.blackouts.size() ||
                     other.corruptions.size() != a.corruptions.size();
  }
  EXPECT_TRUE(any_difference);

  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const fault::FaultPlan plan = fault::Injector::random_plan(seed, options);
    for (const fault::CrashSpec& crash : plan.crashes) {
      EXPECT_GE(crash.node, 1);
      EXPECT_LE(crash.node, options.num_nodes);
      EXPECT_GE(crash.time, 0.2 * options.horizon);
      EXPECT_LE(crash.time, 0.9 * options.horizon);
    }
    for (const fault::CorruptionSpec& spec : plan.corruptions) {
      EXPECT_GT(spec.rate, 0.0);
      EXPECT_LE(spec.rate, options.max_corruption_rate);
    }
  }
}

// -------------------------------------------------------- dataplane units

dataplane::ExecutionConfig file_config(int chunks) {
  dataplane::ExecutionConfig config;
  config.chunk_size = 1.0;
  config.total_chunks = chunks;
  config.emission_rate = 0.0;  // everything available at t = 0
  config.warmup_chunks = 0;
  return config;
}

TEST(DataplaneFault, CrashTearsDownPipesAndSurvivorsComplete) {
  // Diamond: source feeds A and B, both feed C. Crash A mid-stream; C's
  // re-requests move to B and the stream still completes for survivors.
  dataplane::Execution exec(file_config(30));
  const int source = exec.add_node(2.0);
  const int a = exec.add_node(1.0);
  const int b = exec.add_node(1.0);
  const int c = exec.add_node(0.0);
  exec.set_edge(source, a, 1.0);
  exec.set_edge(source, b, 1.0);
  exec.set_edge(a, c, 0.5);
  exec.set_edge(b, c, 0.5);
  exec.run_until(5.0);  // mid-stream, transfers in flight
  exec.crash_node(a);
  EXPECT_FALSE(exec.node_alive(a));
  EXPECT_TRUE(exec.validate().empty());  // no orphaned reservations
  exec.run_until(200.0);
  EXPECT_EQ(exec.delivered(b), 30);
  EXPECT_EQ(exec.delivered(c), 30);
  EXPECT_TRUE(exec.validate().empty());
}

TEST(DataplaneFault, SourceCrashFailsOverToMostCompleteSurvivor) {
  dataplane::Execution exec(file_config(40));
  const int source = exec.add_node(2.0);
  const int a = exec.add_node(1.0);
  const int b = exec.add_node(1.0);
  exec.set_edge(source, a, 1.5);
  exec.set_edge(source, b, 0.5);
  exec.run_until(8.0);  // a is ahead of b
  const int a_had = exec.delivered(a);
  ASSERT_GT(a_had, exec.delivered(b));
  ASSERT_LT(exec.delivered(b), 40);

  exec.crash_node(source);
  const int promoted = exec.failover_source();
  EXPECT_EQ(promoted, a);  // most-complete survivor becomes the origin
  EXPECT_EQ(exec.origin(), a);
  // Chunks only the dead origin held are written off; survivors' completion
  // no longer waits on them.
  EXPECT_EQ(exec.written_off(), static_cast<std::uint64_t>(40 - a_had));
  exec.set_edge(a, b, 1.0);
  exec.run_until(400.0);
  EXPECT_EQ(exec.delivered(b), a_had);
  EXPECT_TRUE(exec.validate().empty());
}

TEST(DataplaneFault, HardenedChecksumsCatchWhatFrozenPropagates) {
  // Chain source -> a -> b with corruption on a's egress. Hardened: every
  // corrupted copy is dropped and re-requested; the final copies are
  // clean. Frozen: b silently accepts and would forward the damage.
  for (const bool hardened : {true, false}) {
    dataplane::ExecutionConfig config = file_config(50);
    config.verify_payloads = hardened;
    dataplane::Execution exec(config);
    const int source = exec.add_node(1.0);
    const int a = exec.add_node(1.0);
    const int b = exec.add_node(0.0);
    exec.set_edge(source, a, 1.0);
    exec.set_edge(a, b, 1.0);
    exec.set_corrupt_rate(a, 0.4);
    exec.run_until(2000.0);
    EXPECT_EQ(exec.delivered(b), 50);
    int damaged = 0;
    for (int chunk = 0; chunk < 50; ++chunk) {
      if (exec.chunk_corrupted(b, chunk)) ++damaged;
    }
    if (hardened) {
      EXPECT_GT(exec.corruptions(), 0u);       // checksums caught copies
      EXPECT_EQ(exec.corrupted_accepted(), 0u);
      EXPECT_EQ(damaged, 0);
    } else {
      EXPECT_EQ(exec.corruptions(), 0u);
      EXPECT_GT(exec.corrupted_accepted(), 0u);
      EXPECT_GT(damaged, 0);  // the damage reached (and sticks to) b
    }
    EXPECT_TRUE(exec.validate().empty());
  }
}

TEST(DataplaneFault, PartitionDropsTrafficUntilHealed) {
  dataplane::Execution exec(file_config(30));
  const int source = exec.add_node(1.0);
  const int a = exec.add_node(0.0);
  exec.set_edge(source, a, 1.0);
  exec.run_until(4.0);
  exec.set_partition_group(a, 1);  // source stays in group 0: cut
  const std::uint64_t losses = exec.losses();
  exec.run_until(5.0);  // the transfer in flight at the cut drains
  const int before = exec.delivered(a);
  exec.run_until(12.0);
  EXPECT_EQ(exec.delivered(a), before);   // nothing crosses the cut
  EXPECT_GT(exec.losses(), losses);       // but the wire kept trying
  exec.set_partition_group(a, 0);         // heal
  exec.run_until(400.0);
  EXPECT_EQ(exec.delivered(a), 30);
  EXPECT_TRUE(exec.validate().empty());
}

// ----------------------------------------------- controller stale guard

/// Minimal synthetic world for the guard: node 1 uploads to node 2.
struct GuardFeed {
  control::Controller controller;
  double now = 0.0;
  double busy = 0.0, completed = 0.0, delivered = 0.0;
  std::uint64_t sent = 0, lost = 0, attempts = 0;

  explicit GuardFeed(const control::ControllerConfig& config)
      : controller(config) {}

  /// One window. `frozen` replays the previous cumulative counters —
  /// exactly what the runtime's blackout substitution produces.
  control::Directive tick(double service_ratio, bool frozen) {
    now += controller.config().sample_interval;
    if (!frozen) {
      const int sends = 10;
      busy += sends / std::max(service_ratio, 1e-6);
      completed += sends;
      sent += sends;
      attempts += sends;
      delivered += controller.config().sample_interval;
    }
    control::TickInputs inputs;
    inputs.now = now;
    inputs.window = controller.config().sample_interval;
    inputs.chunk_size = 0.01;
    inputs.expected_delta = controller.config().sample_interval;
    for (const int id : {1, 2}) {
      control::NodeSample node;
      node.id = id;
      node.nominal = 1.0;
      node.granted = controller.factor(id);
      node.delivered = delivered;
      node.judgeable = true;
      inputs.nodes.push_back(node);
    }
    control::EdgeSample edge;
    edge.from = 1;
    edge.to = 2;
    edge.rate = 1.0;
    edge.busy_time = busy;
    edge.completed = completed;
    edge.sent = sent;
    edge.lost = lost;
    edge.attempts = attempts;
    inputs.edges.push_back(edge);
    return controller.tick(inputs);
  }
};

control::ControllerConfig guard_config() {
  control::ControllerConfig config;
  config.sample_interval = 0.5;
  config.ewma_alpha = 1.0;
  config.egress = {0.85, 0.95, 2};
  config.action_cooldown = 0.0;
  config.restore_cooldown = 100.0;  // no probes mid-test
  config.restore_grid = 1;
  return config;
}

TEST(StaleGuard, FrozenWindowsNeverDemoteAndTtlExpiresEstimates) {
  GuardFeed feed(guard_config());
  feed.tick(1.0, false);
  feed.tick(1.0, false);
  ASSERT_DOUBLE_EQ(feed.controller.node_health(1).egress_ewma, 1.0);

  // A long blackout: every frozen window is skipped — no judgement, no
  // demotion, however long the dark stretch lasts.
  for (int window = 0; window < 10; ++window) {
    const control::Directive directive = feed.tick(1.0, true);
    EXPECT_EQ(directive.demotions, 0);
    EXPECT_GT(directive.stale_nodes, 0);
    EXPECT_GT(directive.stale_edges, 0);
  }
  EXPECT_DOUBLE_EQ(feed.controller.factor(1), 1.0);
  EXPECT_EQ(feed.controller.node_health(1).stale_windows, 10);

  // Past the TTL the carried estimates expired: the first fresh window
  // re-seeds the EWMA from scratch instead of blending with history.
  feed.tick(0.5, false);
  EXPECT_NEAR(feed.controller.node_health(1).egress_ewma, 0.5, 1e-9);
}

TEST(StaleGuard, GlacialPipeStillCountsAgainstItsSender) {
  // A node whose delivery keeps moving is NOT dark, even when one of its
  // pipes shows zero sent/attempts for a window (one slow transmission
  // can span the whole window) — the brownout evidence must keep flowing.
  GuardFeed feed(guard_config());
  feed.tick(1.0, false);
  feed.tick(1.0, false);
  for (int window = 0; window < 4; ++window) {
    // Deliveries move (node 1 keeps receiving) but its egress pipe is
    // glacial: counters stand still.
    feed.now += feed.controller.config().sample_interval;
    feed.delivered += feed.controller.config().sample_interval;
    control::TickInputs inputs;
    inputs.now = feed.now;
    inputs.window = feed.controller.config().sample_interval;
    inputs.chunk_size = 0.01;
    inputs.expected_delta = feed.controller.config().sample_interval;
    for (const int id : {1, 2}) {
      control::NodeSample node;
      node.id = id;
      node.nominal = 1.0;
      node.granted = feed.controller.factor(id);
      node.delivered = feed.delivered;
      node.judgeable = true;
      inputs.nodes.push_back(node);
    }
    control::EdgeSample edge;
    edge.from = 1;
    edge.to = 2;
    edge.rate = 1.0;
    edge.busy_time = feed.busy;
    edge.completed = feed.completed;
    edge.sent = feed.sent;
    edge.lost = feed.lost;
    edge.attempts = feed.attempts;
    inputs.edges.push_back(edge);
    const control::Directive directive = feed.controller.tick(inputs);
    EXPECT_EQ(directive.stale_nodes, 0);  // not dark: deliveries moved
  }
}

TEST(StaleGuard, ForgivePardonsDemotionInOneTick) {
  GuardFeed feed(guard_config());
  feed.tick(1.0, false);
  feed.tick(0.4, false);
  feed.tick(0.4, false);  // second bad window: trip + demote
  ASSERT_LT(feed.controller.factor(1), 1.0);

  feed.controller.forgive(1);
  const control::Directive directive = feed.tick(1.0, false);
  EXPECT_EQ(directive.restores, 1);
  EXPECT_TRUE(directive.act);
  EXPECT_DOUBLE_EQ(feed.controller.factor(1), 1.0);
  ASSERT_FALSE(directive.evidence.empty());
  const control::Evidence& ev = directive.evidence.front();
  EXPECT_STREQ(ev.action, "restore");
  EXPECT_STREQ(ev.detector, "heal");
  EXPECT_LT(ev.factor_before, ev.factor_after);
}

// ------------------------------------------------------ runtime reactions

runtime::RuntimeConfig chaos_config(bool hardened, double chunk,
                                    std::size_t planner_threads = 0) {
  runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.planner.threads = planner_threads;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = chunk;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = hardened;
  if (!hardened) {
    config.dataplane.execution.verify_payloads = false;
    config.fault.detect_crashes = false;
  }
  return config;
}

/// Steps a scripted runtime to `horizon`, dropping clock markers so the
/// control loop ticks even between sparse events.
void run_script(runtime::Runtime& rt, const runtime::ScenarioScript& script,
                double horizon) {
  std::size_t next = 0;
  for (double t = 1.0; t <= horizon + 1e-9; t += 1.0) {
    while (next < script.events.size() && script.events[next].time <= t) {
      rt.step(script.events[next++]);
    }
    runtime::Event marker;
    marker.type = runtime::EventType::kNodeJoin;  // empty: clock only
    marker.time = t;
    rt.step(marker);
  }
}

TEST(RuntimeFault, CrashDetectionSynthesizesDepartureAcrossAllChannels) {
  // Two channels host the same population; node 9 crashes with no leave
  // event. One detection must reclaim it from *both* channels at once.
  runtime::Scenario scenario(12.0, 21);
  scenario.source(400.0)
      .population({24, 0.5, gen::Dist::kUnif100})
      .channel({0.0, -1.0, 1.0, 0.4})
      .channel({0.0, -1.0, 1.0, 0.4});
  runtime::ScenarioScript script = scenario.build();
  fault::FaultPlan plan;
  plan.crashes.push_back({3.0, 9});
  fault::Injector::inject(script, plan);

  runtime::Runtime rt(chaos_config(true, 0.25), script.source_bandwidth,
                      script.initial_peers);
  run_script(rt, script, 12.0);

  EXPECT_EQ(rt.metrics().counter("fault.crashes_detected"), 1u);
  EXPECT_EQ(rt.alive_peers(), 23);
  // The synthesized departure repaired every hosting channel in the same
  // detection pass: one churn entry per channel, same timestamp.
  std::vector<double> repair_times;
  for (const runtime::ChurnReport& report : rt.churn_log()) {
    if (report.type == runtime::EventType::kNodeLeave) {
      repair_times.push_back(report.time);
    }
  }
  ASSERT_EQ(repair_times.size(), 2u);
  EXPECT_DOUBLE_EQ(repair_times[0], repair_times[1]);
  // The grant books still balance with the dead node gone — validate()
  // audits the broker ledger against the live channels.
  EXPECT_GT(rt.broker().allocated(), 0.0);
  EXPECT_TRUE(rt.validate().empty());
}

TEST(RuntimeFault, BlackoutFreezesTelemetryWithoutFalseDemotion) {
  runtime::Scenario scenario(12.0, 22);
  scenario.source(400.0)
      .population({24, 0.5, gen::Dist::kUnif100})
      .channel({0.0, -1.0, 1.0, 0.5});
  runtime::ScenarioScript script = scenario.build();
  fault::FaultPlan plan;
  plan.blackouts.push_back({3.0, 9.0, {2, 5, 11}});
  fault::Injector::inject(script, plan);

  runtime::Runtime rt(chaos_config(true, 0.25), script.source_bandwidth,
                      script.initial_peers);
  run_script(rt, script, 12.0);

  // The dark windows were skipped, nobody was demoted for going silent,
  // and the blacked-out peers survived the detector too.
  EXPECT_GT(rt.metrics().counter("control.stale_nodes"), 0u);
  EXPECT_EQ(rt.metrics().counter("control.demotions"), 0u);
  EXPECT_EQ(rt.metrics().counter("fault.crashes_detected"), 0u);
  EXPECT_EQ(rt.alive_peers(), 24);
  EXPECT_TRUE(rt.validate().empty());
}

TEST(RuntimeFault, PlannerOutageFallsBackAndRecovers) {
  // A node leaves mid-outage: the session must keep a verified incremental
  // repair (never a dead overlay), mark the plan stale, and rebuild once
  // the planner returns.
  runtime::Scenario scenario(12.0, 23);
  scenario.source(400.0)
      .population({24, 0.5, gen::Dist::kUnif100})
      .channel({0.0, -1.0, 1.0, 0.5});
  runtime::ScenarioScript script = scenario.build();
  runtime::Event leave;
  leave.type = runtime::EventType::kNodeLeave;
  leave.time = 5.0;
  leave.leaves = {7};
  script.events.push_back(leave);
  std::stable_sort(script.events.begin(), script.events.end(),
                   [](const runtime::Event& a, const runtime::Event& b) {
                     return a.time < b.time;
                   });
  fault::FaultPlan plan;
  plan.planner_outages.push_back({4.0, 8.0});
  fault::Injector::inject(script, plan);

  runtime::RuntimeConfig config = chaos_config(true, 0.25);
  // A maximal repair bar: a post-departure repair never verifies at 100%
  // of the design rate, so the departure inside the outage window must ask
  // the (down) planner and hit the fallback path.
  config.session.replan_threshold = 1.0;
  runtime::Runtime rt(config, script.source_bandwidth, script.initial_peers);
  run_script(rt, script, 12.0);

  EXPECT_GT(rt.metrics().counter("fault.planner_faults"), 0u);
  EXPECT_GT(rt.metrics().counter("fault.stale_rebuilds"), 0u);
  EXPECT_EQ(rt.alive_peers(), 23);
  // The stream never stopped: the incremental repair carried the channel.
  const dataplane::Execution* exec = rt.execution(0);
  ASSERT_NE(exec, nullptr);
  int moving = 0;
  for (int dp = 1; dp < exec->num_nodes(); ++dp) {
    if (exec->node_alive(dp) && exec->delivered(dp) > 0) ++moving;
  }
  EXPECT_EQ(moving, 23);
  EXPECT_TRUE(rt.validate().empty());
}

TEST(RuntimeFault, ChannelOpenDuringOutageIsRetriedAfterHeal) {
  runtime::Scenario scenario(12.0, 24);
  scenario.source(400.0)
      .population({16, 0.5, gen::Dist::kUnif100})
      .channel({0.0, -1.0, 1.0, 0.4})
      .channel({5.0, -1.0, 1.0, 0.3});  // opens mid-outage
  runtime::ScenarioScript script = scenario.build();
  fault::FaultPlan plan;
  plan.planner_outages.push_back({4.0, 7.0});
  fault::Injector::inject(script, plan);

  runtime::Runtime rt(chaos_config(true, 0.25), script.source_bandwidth,
                      script.initial_peers);
  run_script(rt, script, 12.0);

  EXPECT_GT(rt.metrics().counter("fault.opens_deferred"), 0u);
  EXPECT_GT(rt.metrics().counter("fault.opens_recovered"), 0u);
  EXPECT_EQ(rt.open_channels(), 2u);  // the deferred open landed
  EXPECT_TRUE(rt.validate().empty());
}

// ------------------------------------------------------- chaos acceptance

runtime::ScenarioScript storm_script(int peers, double horizon,
                                     std::uint64_t seed) {
  runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, 0.5});
  runtime::ScenarioScript script = scenario.build();

  fault::FaultPlan plan;
  plan.crashes.push_back({3.0, 17});
  plan.crashes.push_back({3.5, 101});
  plan.crashes.push_back({5.5, 333});
  fault::PartitionSpec partition;
  partition.time = 4.0;
  partition.heal_time = 7.5;
  for (int id = 200; id < 212; ++id) partition.group_b.push_back(id);
  plan.partitions.push_back(partition);
  plan.corruptions.push_back({3.0, -1.0, /*node=*/12, /*rate=*/0.45});
  plan.corruptions.push_back({3.0, -1.0, /*node=*/77, /*rate=*/0.45});
  plan.corruptions.push_back({4.0, -1.0, /*node=*/260, /*rate=*/0.45});
  plan.blackouts.push_back({5.0, 8.0, {40, 41, 42, 43}});
  fault::Injector::inject(script, plan);
  return script;
}

double post_heal_optimum(const runtime::ScenarioScript& script,
                         double fraction) {
  std::vector<char> crashed(script.initial_peers.size() + 1, 0);
  for (const runtime::Event& event : script.events) {
    if (event.type != runtime::EventType::kFault) continue;
    for (const runtime::FaultAction& fault : event.faults) {
      if (fault.kind == runtime::FaultAction::Kind::kCrash) {
        crashed[static_cast<std::size_t>(fault.node)] = 1;
      }
    }
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    if (crashed[k + 1]) continue;
    const runtime::NodeSpec& peer = script.initial_peers[k];
    (peer.guarded ? guarded_bw : open_bw).push_back(peer.bandwidth * fraction);
  }
  Instance survivors(script.source_bandwidth * fraction, std::move(open_bw),
                     std::move(guarded_bw));
  return engine::Planner::plan_uncached(survivors,
                                        engine::Algorithm::kAcyclic, 0)
      .throughput;
}

struct StormOutcome {
  double worst_clean_rate = 0.0;  ///< worst survivor, uncorrupted chunks only
  int stalled = 0;
  std::uint64_t corrupt_accepted = 0;
  std::uint64_t crashes_detected = 0;
  std::string snapshot;
  std::string trace_json;
  std::vector<std::string> violations;
};

StormOutcome run_storm(const runtime::ScenarioScript& script, bool hardened,
                       double chunk, std::size_t planner_threads,
                       bool with_trace = false) {
  obs::TraceSink trace;
  runtime::RuntimeConfig config =
      chaos_config(hardened, chunk, planner_threads);
  if (with_trace) config.trace = &trace;
  runtime::Runtime rt(config, script.source_bandwidth, script.initial_peers);

  std::size_t next = 0;
  const auto run_until = [&](double t) {
    while (next < script.events.size() && script.events[next].time <= t) {
      rt.step(script.events[next++]);
    }
    runtime::Event marker;
    marker.type = runtime::EventType::kNodeJoin;
    marker.time = t;
    rt.step(marker);
  };
  // Clean deliveries only: a silently accepted corrupted chunk is not a
  // delivery, whatever the raw counter says.
  const auto clean_snapshot = [&] {
    const dataplane::Execution* exec = rt.execution(0);
    const int emitted = exec->delivered(exec->origin());
    std::vector<int> clean(static_cast<std::size_t>(exec->num_nodes()), -1);
    for (int dp = 1; dp < exec->num_nodes(); ++dp) {
      if (!exec->node_alive(dp)) continue;
      int damaged = 0;
      for (int chunk_id = 0; chunk_id < emitted; ++chunk_id) {
        if (exec->chunk_corrupted(dp, chunk_id)) ++damaged;
      }
      clean[static_cast<std::size_t>(dp)] = exec->delivered(dp) - damaged;
    }
    return clean;
  };

  run_until(10.0);
  const std::vector<int> before = clean_snapshot();
  run_until(14.0);
  const std::vector<int> after = clean_snapshot();

  StormOutcome outcome;
  outcome.worst_clean_rate = 1e300;
  for (std::size_t k = 1; k < after.size(); ++k) {
    if (after[k] < 0 || before[k] < 0) continue;
    if (after[k] <= before[k]) ++outcome.stalled;
    outcome.worst_clean_rate = std::min(
        outcome.worst_clean_rate, (after[k] - before[k]) * chunk / 4.0);
  }
  outcome.corrupt_accepted = rt.execution(0)->corrupted_accepted();
  outcome.crashes_detected = rt.metrics().counter("fault.crashes_detected");
  outcome.violations = rt.validate();
  outcome.snapshot = rt.metrics().snapshot().to_string(false);
  outcome.trace_json = with_trace ? trace.to_json() : std::string();
  return outcome;
}

TEST(ChaosAcceptance, StormSurvivorsHoldTheFloorAndReplayBitIdentically) {
  const runtime::ScenarioScript script = storm_script(500, 16.0, 2027);
  const double optimum = post_heal_optimum(script, 0.5);
  ASSERT_GT(optimum, 0.0);
  const double chunk = optimum / 40.0;

  const StormOutcome hardened = run_storm(script, true, chunk, 0, true);

  // Every survivor kept completing chunks after the heal; no budget or
  // grant leaked anywhere in the stack; nothing corrupt was accepted; all
  // three crashes were detected from silence alone.
  EXPECT_TRUE(hardened.violations.empty());
  EXPECT_EQ(hardened.stalled, 0);
  EXPECT_EQ(hardened.corrupt_accepted, 0u);
  EXPECT_EQ(hardened.crashes_detected, 3u);
  // The headline floor: worst survivor >= 0.80x the post-heal optimum.
  EXPECT_GE(hardened.worst_clean_rate, 0.80 * optimum);

  // The un-hardened baseline shows what the machinery buys: corruption is
  // silently swallowed and the clean floor is materially worse.
  const StormOutcome frozen = run_storm(script, false, chunk, 0);
  EXPECT_GT(frozen.corrupt_accepted, 0u);
  EXPECT_LT(frozen.worst_clean_rate, 0.65 * optimum);
  EXPECT_LT(frozen.worst_clean_rate, hardened.worst_clean_rate);

  // Replay determinism: same storm, same bytes — across runs and across
  // planner thread counts.
  const StormOutcome again = run_storm(script, true, chunk, 0, true);
  EXPECT_EQ(again.snapshot, hardened.snapshot);
  EXPECT_EQ(again.trace_json, hardened.trace_json);
  const StormOutcome threaded = run_storm(script, true, chunk, 4);
  EXPECT_EQ(threaded.snapshot, hardened.snapshot);
}

// ------------------------------------------------------------- chaos fuzz

TEST(ChaosFuzz, TwoHundredRandomPlansHoldEveryInvariant) {
  constexpr int kSeeds = 200;
  fault::RandomPlanOptions options;
  options.num_nodes = 32;
  options.horizon = 8.0;

  runtime::Scenario scenario(8.0, 77);
  scenario.source(600.0)
      .population({32, 0.5, gen::Dist::kUnif100})
      .channel({0.0, -1.0, 1.0, 0.5});
  const runtime::ScenarioScript base = scenario.build();

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    runtime::ScenarioScript script = base;
    fault::Injector::inject(script,
                            fault::Injector::random_plan(seed, options));

    runtime::Runtime rt(chaos_config(true, 0.5), script.source_bandwidth,
                        script.initial_peers);
    run_script(rt, script, 8.0);  // no deadlock: the loop always returns

    // Budget conservation and no orphaned grants/reservations, whatever
    // the storm did.
    const std::vector<std::string> violations = rt.validate();
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
    // Survivors keep making progress (partitions may legitimately starve
    // their islands until a heal that may never come — skip those).
    const dataplane::Execution* exec = rt.execution(0);
    ASSERT_NE(exec, nullptr) << "seed " << seed;
    EXPECT_GT(exec->delivered(1) + exec->delivered(2), 0) << "seed " << seed;

    // Replay determinism on a sample of the seeds: identical storms give
    // identical metrics, byte for byte.
    if (seed % 16 == 0) {
      runtime::Runtime replay(chaos_config(true, 0.5),
                              script.source_bandwidth, script.initial_peers);
      run_script(replay, script, 8.0);
      EXPECT_EQ(replay.metrics().snapshot().to_string(false),
                rt.metrics().snapshot().to_string(false))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace bmp
