// Sharded rollup tests (ISSUE 10): ShardRegistry handle registration and
// recording, the exact commutative/associative snapshot merge (byte-level
// JSON identity for every shard order and every RollupTree shape), the
// lossless snapshot JSON round-trip, the MetricsSnapshot flattening, the
// Prometheus/JSON exporter goldens that document the sketch relative-error
// contract — and the 500-node acceptance bar: the adaptive brownout
// scenario with telemetry on yields byte-identical rollups across planner
// thread counts, sketch quantiles within alpha of the exact sorted
// latencies, and order-independent two-shard merges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/lineage.hpp"
#include "bmp/obs/rollup.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"

namespace bmp {
namespace {

// --------------------------------------------------------- registry units

TEST(ShardRegistry, HandlesRecordIntoSnapshot) {
  obs::ShardRegistry reg;
  const auto delivered = reg.counter("dataplane.delivered");
  const auto alive = reg.gauge("population.alive", obs::GaugeReduction::kSum);
  const auto latency = reg.sketch("latency", obs::SketchConfig{0.01, 1e-9});
  const auto worst = reg.topk("worst", 4);

  reg.inc(delivered, 41);
  reg.inc(delivered);
  reg.set(alive, 500.0);
  reg.observe(latency, 2.0);
  reg.offer(worst, "node:7", 3);

  EXPECT_EQ(reg.counter_value(delivered), 42u);
  EXPECT_EQ(reg.gauge_value(alive), 500.0);
  EXPECT_EQ(reg.sketch_value(latency).count(), 1u);
  EXPECT_EQ(reg.topk_value(worst).total_weight(), 3u);
  EXPECT_EQ(reg.series(), 4u);
  EXPECT_GT(reg.memory_bytes(), 0u);

  const obs::RollupSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.shards, 1);
  EXPECT_EQ(snap.counters.at("dataplane.delivered"), 42u);
  EXPECT_EQ(snap.gauges.at("population.alive").value, 500.0);
  EXPECT_EQ(snap.sketches.at("latency").count(), 1u);
  EXPECT_EQ(snap.topks.at("worst").top(1).at(0).key, "node:7");
}

TEST(ShardRegistry, RegistrationIsIdempotentAndConflictsThrow) {
  obs::ShardRegistry reg;
  const auto a = reg.counter("c");
  const auto b = reg.counter("c");
  EXPECT_EQ(a.index, b.index);
  reg.gauge("g", obs::GaugeReduction::kSum);
  EXPECT_NO_THROW(reg.gauge("g", obs::GaugeReduction::kSum));
  EXPECT_THROW(reg.gauge("g", obs::GaugeReduction::kMax),
               std::invalid_argument);
  reg.sketch("s", obs::SketchConfig{0.01, 1e-9});
  EXPECT_THROW(reg.sketch("s", obs::SketchConfig{0.02, 1e-9}),
               std::invalid_argument);
  reg.topk("t", 8);
  EXPECT_THROW(reg.topk("t", 16), std::invalid_argument);
}

// ------------------------------------------------------------ merge units

/// S shards with overlapping series and deterministic per-shard streams.
std::vector<obs::RollupSnapshot> make_shards(int count) {
  std::vector<obs::RollupSnapshot> shards;
  for (int s = 0; s < count; ++s) {
    obs::ShardRegistry reg;
    const auto delivered = reg.counter("delivered");
    const auto alive = reg.gauge("alive", obs::GaugeReduction::kSum);
    const auto low = reg.gauge("low_water", obs::GaugeReduction::kMin);
    const auto high = reg.gauge("high_water", obs::GaugeReduction::kMax);
    const auto lat = reg.sketch("latency", obs::SketchConfig{0.01, 1e-9});
    const auto worst = reg.topk("worst", 3);
    reg.inc(delivered, static_cast<std::uint64_t>(100 + s));
    reg.set(alive, 10.0 * (s + 1));
    reg.set(low, 5.0 - s);
    reg.set(high, 5.0 + s);
    for (int k = 0; k < 200; ++k) {
      reg.observe(lat, 0.001 * ((k * 37 + s * 101) % 997 + 1));
    }
    for (int k = 0; k < 50; ++k) {
      reg.offer(worst, "n" + std::to_string((k * k + s) % 7));
    }
    shards.push_back(reg.snapshot());
  }
  return shards;
}

TEST(Rollup, MergeOrderAndTreeShapeAreByteIdentical) {
  const std::vector<obs::RollupSnapshot> shards = make_shards(7);
  const obs::RollupSnapshot forward = obs::rollup(shards);
  EXPECT_EQ(forward.shards, 7);

  std::vector<obs::RollupSnapshot> reversed(shards.rbegin(), shards.rend());
  EXPECT_EQ(obs::rollup(reversed).to_json(), forward.to_json());

  std::vector<obs::RollupSnapshot> rotated(shards.begin() + 3, shards.end());
  rotated.insert(rotated.end(), shards.begin(), shards.begin() + 3);
  EXPECT_EQ(obs::rollup(rotated).to_json(), forward.to_json());

  for (const int fanout : {2, 3, 8}) {
    obs::RollupTree tree(fanout);
    for (const obs::RollupSnapshot& shard : shards) tree.add(shard);
    EXPECT_EQ(tree.global().to_json(), forward.to_json())
        << "fanout " << fanout;
  }

  // Reductions folded as configured.
  EXPECT_EQ(forward.counters.at("delivered"), 100u * 7 + 21);
  EXPECT_EQ(forward.gauges.at("alive").value, 10.0 * 28);
  EXPECT_EQ(forward.gauges.at("low_water").value, -1.0);
  EXPECT_EQ(forward.gauges.at("high_water").value, 11.0);
}

TEST(Rollup, MergeRejectsConflictingSeriesDefinitions) {
  obs::ShardRegistry a;
  a.gauge("g", obs::GaugeReduction::kSum);
  obs::ShardRegistry b;
  b.gauge("g", obs::GaugeReduction::kMax);
  obs::RollupSnapshot left = a.snapshot();
  EXPECT_THROW(left.merge(b.snapshot()), std::invalid_argument);
}

TEST(Rollup, JsonRoundTripIsLossless) {
  // Round-trip both a single shard and a merged rollup whose top-K summary
  // exceeds its streaming capacity — the case obs_query relies on.
  const std::vector<obs::RollupSnapshot> shards = make_shards(5);
  const obs::RollupSnapshot global = obs::rollup(shards);
  for (const obs::RollupSnapshot* snap : {&shards[0], &global}) {
    obs::RollupSnapshot parsed;
    ASSERT_TRUE(obs::parse_rollup_json(snap->to_json(), parsed));
    EXPECT_EQ(parsed.to_json(), snap->to_json());
    // A reloaded snapshot merges like the original (offline == online).
    obs::RollupSnapshot a = *snap;
    a.merge(shards[1]);
    parsed.merge(shards[1]);
    EXPECT_EQ(parsed.to_json(), a.to_json());
  }
  obs::RollupSnapshot bad;
  EXPECT_FALSE(obs::parse_rollup_json("{\"not\":\"a rollup\"}", bad));
}

TEST(Rollup, ToMetricsFlattensEverySeriesKind) {
  obs::ShardRegistry reg;
  const auto c = reg.counter("delivered");
  const auto g = reg.gauge("alive", obs::GaugeReduction::kSum);
  const auto s = reg.sketch("latency", obs::SketchConfig{0.01, 1e-9});
  const auto t = reg.topk("worst", 4);
  reg.inc(c, 9);
  reg.set(g, 3.0);
  reg.observe(s, 0.003);  // representative <= 0.005: first export bucket
  reg.observe(s, 0.7);    // representative <= 1.0: eighth export bucket
  reg.offer(t, "node:5", 6);

  const runtime::MetricsSnapshot snap = reg.snapshot().to_metrics();
  EXPECT_EQ(snap.counters.at("delivered"), 9u);
  EXPECT_EQ(snap.gauges.at("alive"), 3.0);
  // Top-K rows land as counters named <series>.<key>.
  EXPECT_EQ(snap.counters.at("worst.node:5"), 6u);
  // The sketch's log buckets re-bin onto the fixed export bounds
  // cumulatively.
  const runtime::HistogramStats& stats = snap.histograms.at("latency");
  EXPECT_EQ(stats.count, 2u);
  ASSERT_EQ(stats.buckets.size(),
            runtime::WindowedHistogram::kBucketBounds.size());
  EXPECT_EQ(stats.buckets[0], 1u);  // <= 0.005
  EXPECT_EQ(stats.buckets[7], 2u);  // <= 1.0
  EXPECT_EQ(stats.buckets.back(), 2u);
}

// -------------------------------------------------------- exporter goldens

/// One observation of 1.0 in an alpha = 0.01 sketch: gamma = 1.01/0.99,
/// the value lands in bucket 0 (range (gamma^-1, 1]) whose representative
/// is 2/(gamma+1) = 0.99 — exactly the documented worst-case relative
/// error: |0.99 - 1.0| = alpha * 1.0. The goldens below pin that rendering.
obs::RollupSnapshot golden_snapshot() {
  obs::ShardRegistry reg;
  const auto c = reg.counter("events.total");
  const auto g = reg.gauge("alive", obs::GaugeReduction::kSum);
  const auto s = reg.sketch("latency", obs::SketchConfig{0.01, 1e-9});
  const auto t = reg.topk("worst", 4);
  reg.inc(c, 3);
  reg.set(g, 2.0);
  reg.observe(s, 1.0);
  reg.offer(t, "node:1", 5);
  reg.offer(t, "node:2", 2);
  return reg.snapshot();
}

TEST(RollupExport, PrometheusGolden) {
  const std::string expected =
      "# TYPE bmp_events_total_total counter\n"
      "bmp_events_total_total 3\n"
      "# TYPE bmp_alive gauge\n"
      "bmp_alive 2\n"
      "# TYPE bmp_latency summary\n"
      "bmp_latency{quantile=\"0.5\"} 0.99\n"
      "bmp_latency{quantile=\"0.9\"} 0.99\n"
      "bmp_latency{quantile=\"0.99\"} 0.99\n"
      "bmp_latency_sum 0.99\n"
      "bmp_latency_count 1\n"
      "# TYPE bmp_latency_sketch histogram\n"
      "bmp_latency_sketch_bucket{le=\"1\"} 1\n"
      "bmp_latency_sketch_bucket{le=\"+Inf\"} 1\n"
      "bmp_latency_sketch_sum 0.99\n"
      "bmp_latency_sketch_count 1\n"
      "# TYPE bmp_worst gauge\n"
      "bmp_worst{key=\"node:1\"} 5\n"
      "bmp_worst{key=\"node:2\"} 2\n";
  EXPECT_EQ(obs::to_prometheus(golden_snapshot()), expected);
}

TEST(RollupExport, JsonGolden) {
  const std::string expected =
      "{\"shards\":1,\"counters\":{\"events.total\":3},"
      "\"gauges\":{\"alive\":2},"
      "\"sketches\":{\"latency\":{\"count\":1,\"sum\":0.99,\"min\":1,"
      "\"max\":1,\"mean\":0.99,\"p50\":0.99,\"p90\":0.99,\"p99\":0.99,"
      "\"alpha\":0.01}},"
      "\"topk\":{\"worst\":[[\"node:1\",5,0],[\"node:2\",2,0]]}}";
  EXPECT_EQ(obs::to_json(golden_snapshot()), expected);
}

// ------------------------------------- 500-node acceptance (ISSUE 10)

/// The 500-node adaptive brownout scenario from the control/lineage
/// acceptance tests: two peer classes behind a half-share channel, 10% of
/// the nodes browned out 4x at t=3 for good.
runtime::ScenarioScript telemetry_script(int peers, double horizon,
                                         std::uint64_t seed) {
  runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, /*fraction=*/0.5});
  runtime::BrownoutSpec brownout;
  brownout.time = 3.0;
  brownout.duration = -1.0;
  brownout.fraction = 0.10;
  brownout.capacity_factor = 0.25;
  scenario.brownout(brownout);
  return scenario.build();
}

double post_brownout_optimum(const runtime::ScenarioScript& script,
                             double fraction) {
  std::vector<char> browned(script.initial_peers.size() + 1, 0);
  for (const runtime::Event& event : script.events) {
    if (event.type != runtime::EventType::kDegrade) continue;
    for (const runtime::Degradation& d : event.degrades) {
      browned[static_cast<std::size_t>(d.node)] = 1;
    }
    break;
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    const runtime::NodeSpec& peer = script.initial_peers[k];
    const double eff =
        peer.bandwidth * fraction * (browned[k + 1] ? 0.25 : 1.0);
    (peer.guarded ? guarded_bw : open_bw).push_back(eff);
  }
  Instance effective(script.source_bandwidth * fraction, std::move(open_bw),
                     std::move(guarded_bw));
  return engine::Planner::plan_uncached(effective,
                                        engine::Algorithm::kAcyclic, 0)
      .throughput;
}

void run_with_telemetry(const runtime::ScenarioScript& script, double chunk,
                        double horizon, std::size_t planner_threads,
                        const std::string& prefix, obs::ShardRegistry& reg,
                        obs::LineageSink* sink) {
  runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.planner.threads = planner_threads;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = chunk;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = true;
  config.control.slo_enabled = true;
  config.telemetry = &reg;
  config.telemetry_node_prefix = prefix;
  config.lineage = sink;
  runtime::Runtime rt(config, script.source_bandwidth, script.initial_peers);
  std::size_t next = 0;
  while (next < script.events.size() && script.events[next].time <= horizon) {
    rt.step(script.events[next++]);
  }
  runtime::Event marker;
  marker.type = runtime::EventType::kNodeJoin;  // empty: clock only
  marker.time = horizon;
  rt.step(marker);
  EXPECT_TRUE(rt.validate().empty());
  // The telemetry mirror agrees with the classic registry on the shared
  // fleet-wide counter.
  EXPECT_EQ(reg.snapshot().counters.at("dataplane.delivered"),
            rt.metrics().counter("dataplane.delivered"));
}

TEST(RollupAcceptance, FiveHundredNodeScenarioTelemetry) {
  const runtime::ScenarioScript script = telemetry_script(500, 24.0, 2026);
  const double optimum = post_brownout_optimum(script, 0.5);
  ASSERT_GT(optimum, 0.0);
  const double chunk = optimum / 40.0;

  obs::LineageSink sink;
  obs::ShardRegistry one;
  obs::ShardRegistry four;
  run_with_telemetry(script, chunk, 24.0, 1, "a:", one, &sink);
  run_with_telemetry(script, chunk, 24.0, 4, "a:", four, nullptr);

  const obs::RollupSnapshot snap_one = one.snapshot();
  const obs::RollupSnapshot snap_four = four.snapshot();
  EXPECT_GT(snap_one.counters.at("dataplane.delivered"), 0u);
  EXPECT_GT(snap_one.sketches.at("dataplane.chunk_latency").count(), 0u);

  // Byte-identity across planner thread counts: the rolled-up telemetry is
  // part of the determinism contract, like the lineage dump before it.
  EXPECT_EQ(snap_one.to_json(), snap_four.to_json());

  // Quantile relative error vs an exact sort of the scenario's per-hop
  // delivery delays: feed the exact multiset into a fresh sketch and
  // compare against the sorted truth at the exported quantiles.
  std::vector<double> delays;
  for (const obs::HopRecord& hop : sink.hops()) {
    delays.push_back(hop.finish - hop.enqueue);
  }
  ASSERT_GT(delays.size(), 1000u);
  obs::Sketch sketch(obs::SketchConfig{0.01, 1e-9});
  for (const double d : delays) sketch.record(d);
  std::sort(delays.begin(), delays.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(delays.size())));
    const double exact = delays[rank == 0 ? 0 : rank - 1];
    EXPECT_LE(std::fabs(sketch.quantile(q) - exact), 0.01 * exact + 1e-12)
        << "q=" << q;
  }

  // A second shard (different node prefix, same workload) merges into the
  // global snapshot identically from either side, flat or tree-shaped.
  obs::ShardRegistry other;
  run_with_telemetry(script, chunk, 24.0, 1, "b:", other, nullptr);
  const obs::RollupSnapshot snap_other = other.snapshot();
  obs::RollupSnapshot ab = snap_one;
  ab.merge(snap_other);
  obs::RollupSnapshot ba = snap_other;
  ba.merge(snap_one);
  EXPECT_EQ(ab.shards, 2);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  obs::RollupTree tree(2);
  tree.add(snap_one);
  tree.add(snap_other);
  EXPECT_EQ(tree.global().to_json(), ab.to_json());
}

}  // namespace
}  // namespace bmp
