// Randomized useful-piece broadcast simulator tests (§II.C substrate):
// deterministic replay, conservation sanity, and — the paper's operational
// claim — that overlays built by our algorithms sustain stream rates close
// to their design throughput under random useful forwarding.
#include <gtest/gtest.h>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/sim/massoulie.hpp"
#include "test_helpers.hpp"

namespace bmp::sim {
namespace {

TEST(Simulator, RejectsBadConfig) {
  BroadcastScheme s(2);
  s.add(0, 1, 1.0);
  EXPECT_THROW(simulate_random_useful(s, {0.0, 10.0, 1.0, 1, true}),
               std::invalid_argument);
  EXPECT_THROW(simulate_random_useful(s, {1.0, 5.0, 5.0, 1, true}),
               std::invalid_argument);
}

TEST(Simulator, DeterministicForFixedSeed) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  const SimConfig config{0.8, 200.0, 50.0, 42, true};
  const SimResult a = simulate_random_useful(s, config);
  const SimResult b = simulate_random_useful(s, config);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.nodes[2].pieces_received, b.nodes[2].pieces_received);
}

TEST(Simulator, SingleEdgeDeliversAtStreamRate) {
  BroadcastScheme s(2);
  s.add(0, 1, 2.0);
  const SimResult r = simulate_random_useful(s, {1.0, 400.0, 100.0, 7, true});
  // Edge capacity 2 > stream rate 1: node keeps up.
  EXPECT_NEAR(r.nodes[1].rate, 1.0, 0.05);
  EXPECT_EQ(r.duplicates, 0);
}

TEST(Simulator, BottleneckEdgeCapsTheRate) {
  BroadcastScheme s(2);
  s.add(0, 1, 0.5);
  const SimResult r = simulate_random_useful(s, {1.0, 400.0, 100.0, 7, true});
  EXPECT_NEAR(r.nodes[1].rate, 0.5, 0.05);
}

TEST(Simulator, ChainPropagates) {
  BroadcastScheme s(4);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  s.add(2, 3, 1.0);
  const SimResult r = simulate_random_useful(s, {0.8, 500.0, 150.0, 11, true});
  for (int v = 1; v < 4; ++v) {
    EXPECT_GT(r.nodes[v].rate, 0.7) << "node " << v;
  }
  // Delay grows along the chain.
  EXPECT_GT(r.nodes[3].mean_delay, r.nodes[1].mean_delay);
}

TEST(Simulator, Fig1AcyclicOverlaySustainsNearDesignRate) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws = build_scheme_from_word(inst, make_word("GOGOG"), 4.0);
  // Stream at 90% of the design throughput (Massoulié optimality is
  // asymptotic; random forwarding needs slack).
  const SimResult r =
      simulate_random_useful(ws.scheme, {3.6, 600.0, 200.0, 13, true});
  EXPECT_GT(r.min_rate, 0.85 * 3.6);
}

TEST(Simulator, CyclicOverlaySustainsNearDesignRate) {
  const Instance inst(6.0, {6.0, 6.0, 3.0}, {});
  const double T = cyclic_open_optimal(inst);
  const BroadcastScheme s = build_cyclic_open(inst, T);
  const SimResult r =
      simulate_random_useful(s, {0.85 * T, 600.0, 200.0, 17, true});
  EXPECT_GT(r.min_rate, 0.75 * T);
}

TEST(Simulator, DedupReducesDuplicates) {
  // Diamond where both 1 and 2 feed 3 at high rate: without in-flight
  // dedup node 3 sees duplicate transfers.
  BroadcastScheme s(4);
  s.add(0, 1, 2.0);
  s.add(0, 2, 2.0);
  s.add(1, 3, 2.0);
  s.add(2, 3, 2.0);
  const SimConfig dedup{1.0, 300.0, 50.0, 23, true};
  SimConfig no_dedup = dedup;
  no_dedup.dedup_in_flight = false;
  const SimResult with = simulate_random_useful(s, dedup);
  const SimResult without = simulate_random_useful(s, no_dedup);
  EXPECT_LE(with.duplicates, without.duplicates);
  EXPECT_GT(without.duplicates, 0);
}

TEST(Simulator, RandomOverlaysNeverExceedDesignThroughput) {
  util::Xoshiro256 rng(29);
  for (int rep = 0; rep < 10; ++rep) {
    const int n = 3 + static_cast<int>(rng.below(6));
    const Instance inst = testing::random_instance(rng, n, 2, 1.0, 8.0);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 0.1) continue;
    const SimResult r = simulate_random_useful(
        sol.scheme, {2.0 * sol.throughput, 200.0, 50.0, rep + 1u, true});
    // Overdriving the source cannot push past the overlay capacity.
    EXPECT_LT(r.min_rate, 1.3 * sol.throughput);
  }
}

}  // namespace
}  // namespace bmp::sim
