// Workload-generator tests: the six Fig. 19 distributions hit their
// documented parameterizations (checked on robust statistics — medians for
// the heavy-tailed families), and random_instance satisfies the §XII setup
// (source bandwidth = cyclic fixed point, class split by p_open).
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/bounds.hpp"
#include "bmp/gen/distributions.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/gen/planetlab_data.hpp"
#include "bmp/util/stats.hpp"

namespace bmp::gen {
namespace {

TEST(Distributions, NamesAndOrder) {
  const auto& all = all_distributions();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(name(all[0]), "LN1");
  EXPECT_EQ(name(all[5]), "PLab");
  EXPECT_EQ(name(Dist::kPower2), "Power2");
}

TEST(Distributions, ParetoParamsMatchMoments) {
  // mean=std=100: var/mean^2 = 1 = 1/(a(a-2)) -> a = 1+sqrt(2).
  const ParetoParams p1 = pareto_params(100.0, 100.0);
  EXPECT_NEAR(p1.shape, 1.0 + std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(p1.scale * p1.shape / (p1.shape - 1.0), 100.0, 1e-9);
  // std=1000: a = 1+sqrt(1.01).
  const ParetoParams p2 = pareto_params(100.0, 1000.0);
  EXPECT_NEAR(p2.shape, 1.0 + std::sqrt(1.01), 1e-12);
  EXPECT_THROW(pareto_params(-1.0, 1.0), std::invalid_argument);
}

TEST(Distributions, ParetoMedianMatchesTheory) {
  // Median of Pareto(a, x_m) = x_m * 2^(1/a) — robust under the heavy tail.
  util::Xoshiro256 rng(52);
  for (const double stddev : {100.0, 1000.0}) {
    const ParetoParams p = pareto_params(100.0, stddev);
    std::vector<double> draws;
    draws.reserve(40000);
    for (int i = 0; i < 40000; ++i) draws.push_back(sample_pareto(100.0, stddev, rng));
    const double theoretical = p.scale * std::pow(2.0, 1.0 / p.shape);
    EXPECT_NEAR(util::median(draws), theoretical, 0.03 * theoretical)
        << "std=" << stddev;
    for (const double d : draws) EXPECT_GE(d, p.scale);
  }
}

TEST(Distributions, LogNormalMedianAndMean) {
  util::Xoshiro256 rng(53);
  std::vector<double> draws;
  for (int i = 0; i < 60000; ++i) draws.push_back(sample_lognormal(100.0, 100.0, rng));
  // Median = exp(mu) = mean / sqrt(1 + std^2/mean^2) = 100/sqrt(2).
  EXPECT_NEAR(util::median(draws), 100.0 / std::sqrt(2.0), 2.0);
  EXPECT_NEAR(util::mean(draws), 100.0, 4.0);
}

TEST(Distributions, Unif100Range) {
  util::Xoshiro256 rng(54);
  util::RunningStats rs;
  for (int i = 0; i < 50000; ++i) {
    const double x = sample(Dist::kUnif100, rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LT(x, 100.0);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), 50.5, 1.0);
}

TEST(Distributions, PlanetLabSampleShape) {
  const auto& data = planetlab_bandwidths();
  EXPECT_EQ(data.size(), 300u);
  std::vector<double> copy(data.begin(), data.end());
  const double med = util::median(copy);
  double max_value = 0.0;
  for (const double v : data) {
    EXPECT_GT(v, 0.0);
    max_value = std::max(max_value, v);
  }
  // Heavy tail: the best node is far above the median.
  EXPECT_GT(max_value / med, 5.0);
  // Resampling stays inside the support.
  util::Xoshiro256 rng(55);
  for (int i = 0; i < 1000; ++i) {
    const double x = sample(Dist::kPlanetLab, rng);
    EXPECT_GE(x, *std::min_element(data.begin(), data.end()));
    EXPECT_LE(x, max_value);
  }
}

TEST(Generator, SplitsClassesByProbability) {
  util::Xoshiro256 rng(56);
  const Instance all_open = random_instance({50, 1.0, Dist::kUnif100}, rng);
  EXPECT_EQ(all_open.n(), 50);
  EXPECT_EQ(all_open.m(), 0);
  const Instance all_guarded = random_instance({50, 0.0, Dist::kUnif100}, rng);
  EXPECT_EQ(all_guarded.n(), 0);
  EXPECT_EQ(all_guarded.m(), 50);
  int opens = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const Instance inst = random_instance({20, 0.7, Dist::kUnif100}, rng);
    EXPECT_EQ(inst.n() + inst.m(), 20);
    opens += inst.n();
  }
  EXPECT_NEAR(opens / (200.0 * 20.0), 0.7, 0.03);
}

TEST(Generator, SourceIsCyclicFixedPoint) {
  util::Xoshiro256 rng(57);
  for (const Dist dist : all_distributions()) {
    for (int rep = 0; rep < 20; ++rep) {
      const Instance inst = random_instance({30, 0.5, dist}, rng);
      EXPECT_NEAR(cyclic_upper_bound(inst), inst.b(0),
                  1e-9 * std::max(1.0, inst.b(0)))
          << name(dist);
    }
  }
}

TEST(Generator, RejectsBadConfig) {
  util::Xoshiro256 rng(58);
  EXPECT_THROW(random_instance({0, 0.5, Dist::kUnif100}, rng),
               std::invalid_argument);
  EXPECT_THROW(random_instance({5, 1.5, Dist::kUnif100}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace bmp::gen
