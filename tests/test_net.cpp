// Overlay/NAT layer tests (§II.A substrate): connectivity classes, hole
// punching, overlay materialization of schemes, and the relay planner for
// guarded->guarded demands.
#include <gtest/gtest.h>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/net/overlay.hpp"
#include "test_helpers.hpp"

namespace bmp::net {
namespace {

TEST(Connectivity, ClassRules) {
  const Connectivity c({NodeClass::kOpen, NodeClass::kOpen, NodeClass::kGuarded,
                        NodeClass::kGuarded},
                       /*hole_punch_success=*/0.0);
  EXPECT_TRUE(c.can_connect(0, 1));
  EXPECT_TRUE(c.can_connect(0, 2));
  EXPECT_TRUE(c.can_connect(2, 1));
  EXPECT_FALSE(c.can_connect(2, 3));
  EXPECT_FALSE(c.can_connect(3, 2));
  EXPECT_FALSE(c.can_connect(1, 1));
  EXPECT_EQ(c.punched_pairs(), 0);
}

TEST(Connectivity, HolePunchingIsSymmetricAndSeeded) {
  std::vector<NodeClass> classes(12, NodeClass::kGuarded);
  classes[0] = NodeClass::kOpen;
  const Connectivity a(classes, 0.5, 99);
  const Connectivity b(classes, 0.5, 99);
  int connected = 0;
  for (int x = 1; x < 12; ++x) {
    for (int y = x + 1; y < 12; ++y) {
      EXPECT_EQ(a.can_connect(x, y), a.can_connect(y, x));
      EXPECT_EQ(a.can_connect(x, y), b.can_connect(x, y));
      connected += a.can_connect(x, y) ? 1 : 0;
    }
  }
  EXPECT_EQ(connected, a.punched_pairs());
  EXPECT_GT(connected, 5);   // ~50% of 55 pairs
  EXPECT_LT(connected, 50);
}

TEST(Connectivity, FromInstanceMatchesClasses) {
  const Instance inst = testing::fig1_instance();
  const Connectivity c = Connectivity::from_instance(inst);
  EXPECT_EQ(c.node_class(0), NodeClass::kOpen);
  EXPECT_EQ(c.node_class(2), NodeClass::kOpen);
  EXPECT_EQ(c.node_class(3), NodeClass::kGuarded);
  EXPECT_FALSE(c.can_connect(3, 4));
}

TEST(Overlay, MaterializesSchemesBuiltByTheAlgorithms) {
  util::Xoshiro256 rng(123);
  for (int rep = 0; rep < 40; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const int m = static_cast<int>(rng.below(8));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    const Connectivity c = Connectivity::from_instance(inst);
    // Our schemes always respect the firewall constraint, so this must
    // succeed even with zero hole-punch success.
    const Overlay overlay = Overlay::from_scheme(inst, sol.scheme, c);
    EXPECT_EQ(static_cast<int>(overlay.connections().size()),
              sol.scheme.edge_count());
    for (int i = 0; i < inst.size(); ++i) {
      EXPECT_EQ(overlay.fan_out(i), sol.scheme.out_degree(i));
      EXPECT_NEAR(overlay.upload_of(i), sol.scheme.out_rate(i), 1e-9);
    }
  }
}

TEST(Overlay, RejectsFirewallViolatingScheme) {
  const Instance inst(5.0, {2.0}, {2.0, 2.0});
  BroadcastScheme bad(inst.size());
  bad.add(0, 2, 1.0);
  bad.add(2, 3, 1.0);  // guarded -> guarded
  const Connectivity c = Connectivity::from_instance(inst);
  EXPECT_THROW(Overlay::from_scheme(inst, bad, c), std::invalid_argument);
  // With universal hole punching the same scheme becomes deployable.
  const Connectivity punched = Connectivity::from_instance(inst, 1.0);
  EXPECT_NO_THROW(Overlay::from_scheme(inst, bad, punched));
}

TEST(Overlay, DescribeListsConnections) {
  const Instance inst = testing::fig1_instance();
  const AcyclicSolution sol = solve_acyclic(inst);
  const Overlay overlay =
      Overlay::from_scheme(inst, sol.scheme, Connectivity::from_instance(inst));
  const std::string text = overlay.describe(inst);
  EXPECT_NE(text.find("C0"), std::string::npos);
  EXPECT_NE(text.find("guarded"), std::string::npos);
}

TEST(RelayPlanner, SplitsAcrossRelays) {
  const std::vector<RelayDemand> demands{{10, 11, 3.0}};
  const RelayPlan plan = plan_relays(demands, {1, 2}, {2.0, 2.0});
  EXPECT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.relay_bandwidth_used, 3.0);
  EXPECT_EQ(plan.routes.size(), 2u);
}

TEST(RelayPlanner, DetectsInfeasibility) {
  const std::vector<RelayDemand> demands{{10, 11, 5.0}};
  const RelayPlan plan = plan_relays(demands, {1}, {2.0});
  EXPECT_FALSE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.relay_bandwidth_used, 2.0);
}

TEST(RelayPlanner, MultipleDemandsShareBudgets) {
  const std::vector<RelayDemand> demands{{10, 11, 1.5}, {12, 13, 1.5}};
  const RelayPlan plan = plan_relays(demands, {1, 2}, {2.0, 1.0});
  EXPECT_TRUE(plan.feasible);
  double used = 0.0;
  for (const auto& route : plan.routes) used += route.rate;
  EXPECT_DOUBLE_EQ(used, 3.0);
}

TEST(RelayPlanner, ValidatesInput) {
  EXPECT_THROW(plan_relays({}, {1, 2}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace bmp::net
