// Shared fixtures for the test suite: the paper's worked instances and a
// small random-instance helper (independent of src/gen so the core tests
// have no extra dependencies).
#pragma once

#include <vector>

#include "bmp/core/instance.hpp"
#include "bmp/util/rational.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::testing {

/// Figure 1: source b0=6, open {5,5}, guarded {4,1,1}; T* = 4.4.
inline Instance fig1_instance() {
  return Instance(6.0, {5.0, 5.0}, {4.0, 1.0, 1.0});
}

inline RationalInstance fig1_rational() {
  using util::Rational;
  return RationalInstance(Rational(6), {Rational(5), Rational(5)},
                          {Rational(4), Rational(1), Rational(1)});
}

/// Figure 11/12 worked example for the cyclic construction: b=[5,5,3,2],
/// T=5, Algorithm 1 stalls at i0 = 3 = n.
inline Instance fig11_instance() { return Instance(5.0, {5.0, 3.0, 2.0}, {}); }

/// Figure 14: b=[5,5,4,4,4,3], T=5, stalls at i0=3 with M3=1.
inline Instance fig14_instance() {
  return Instance(5.0, {5.0, 4.0, 4.0, 4.0, 3.0}, {});
}

/// Random instance with n open / m guarded nodes, bandwidths in [lo, hi).
inline Instance random_instance(util::Xoshiro256& rng, int n, int m,
                                double lo = 0.5, double hi = 10.0) {
  std::vector<double> open(static_cast<std::size_t>(n));
  std::vector<double> guarded(static_cast<std::size_t>(m));
  for (auto& b : open) b = rng.uniform(lo, hi);
  for (auto& b : guarded) b = rng.uniform(lo, hi);
  const double b0 = rng.uniform(lo, hi);
  return Instance(b0, std::move(open), std::move(guarded));
}

/// Random instance with small-integer bandwidths, exact in Rational form.
struct IntInstancePair {
  Instance dbl;
  RationalInstance rat;
};

inline IntInstancePair random_int_instance(util::Xoshiro256& rng, int n, int m,
                                           int max_bw = 12) {
  using util::Rational;
  std::vector<double> open_d;
  std::vector<double> guarded_d;
  std::vector<Rational> open_r;
  std::vector<Rational> guarded_r;
  const auto draw = [&] { return static_cast<std::int64_t>(rng.below(max_bw)) + 1; };
  for (int i = 0; i < n; ++i) {
    const auto v = draw();
    open_d.push_back(static_cast<double>(v));
    open_r.emplace_back(v);
  }
  for (int i = 0; i < m; ++i) {
    const auto v = draw();
    guarded_d.push_back(static_cast<double>(v));
    guarded_r.emplace_back(v);
  }
  const auto b0 = draw();
  return {Instance(static_cast<double>(b0), open_d, guarded_d),
          RationalInstance(Rational(b0), open_r, guarded_r)};
}

}  // namespace bmp::testing
