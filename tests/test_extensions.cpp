// Tests for the extension modules: churn experiment (§VII), download-cap
// throughput (beyond the paper's "downloads are large enough" assumption),
// and platform/scheme serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/flow/node_caps.hpp"
#include "bmp/net/instance_io.hpp"
#include "bmp/sim/churn.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

// ---------- churn ----------

TEST(Churn, RemoveNodesKeepsClassesAndSource) {
  const Instance inst(6.0, {5.0, 4.0, 3.0}, {2.0, 1.0});
  const Instance survivors = sim::remove_nodes(inst, {2, 4});  // open 4.0, guarded 2.0
  EXPECT_DOUBLE_EQ(survivors.b(0), 6.0);
  EXPECT_EQ(survivors.n(), 2);
  EXPECT_EQ(survivors.m(), 1);
  EXPECT_DOUBLE_EQ(survivors.b(1), 5.0);
  EXPECT_DOUBLE_EQ(survivors.b(2), 3.0);
  EXPECT_DOUBLE_EQ(survivors.b(3), 1.0);
  EXPECT_THROW(sim::remove_nodes(inst, {0}), std::invalid_argument);
  EXPECT_THROW(sim::remove_nodes(inst, {9}), std::invalid_argument);
}

TEST(Churn, RestrictSchemeDropsAndRemaps) {
  BroadcastScheme s(4);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  s.add(1, 3, 1.0);
  const BroadcastScheme r = sim::restrict_scheme(s, {2});
  EXPECT_EQ(r.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(r.rate(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r.rate(1, 2), 1.0);  // old node 3 -> new id 2
  EXPECT_EQ(r.edge_count(), 2);
}

TEST(Churn, ExperimentShowsDegradationAndRecovery) {
  const Instance inst(
      1.0, std::vector<double>(10, 1.2), std::vector<double>(10, 0.7));
  const sim::ChurnResult r = sim::churn_experiment(inst, {0.3, 0.8, 300.0, 5});
  EXPECT_GT(r.design_rate, 0.0);
  EXPECT_EQ(r.departed, 6);
  EXPECT_EQ(r.survivors, 14);
  // Healthy before the failure.
  EXPECT_GT(r.pre_fail_min_rate, 0.85 * 0.8 * r.design_rate);
  // The broken overlay starves someone (the paper: "probably not resilient
  // to churn").
  EXPECT_LT(r.broken_min_rate, 0.5 * r.pre_fail_min_rate);
  // Replanning on survivors restores a healthy stream.
  EXPECT_GT(r.replanned_rate, 0.0);
  EXPECT_GT(r.replanned_min_rate, 0.85 * 0.8 * r.replanned_rate);
}

TEST(Churn, ValidatesFraction) {
  const Instance inst(1.0, {1.0, 1.0}, {});
  EXPECT_THROW(sim::churn_experiment(inst, {1.5, 0.8, 100.0, 1}),
               std::invalid_argument);
}

// ---------- download caps ----------

TEST(NodeCaps, ValidateFlagsViolations) {
  BroadcastScheme s(3);
  s.add(0, 1, 3.0);
  s.add(0, 2, 1.0);
  const std::vector<double> caps{0.0, 2.0, 2.0};
  const auto issues = flow::validate_download_caps(s, caps);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("node 1"), std::string::npos);
  EXPECT_THROW(flow::validate_download_caps(s, {1.0}), std::invalid_argument);
}

TEST(NodeCaps, ThroughputWithGenerousCapsMatchesPlain) {
  util::Xoshiro256 rng(81);
  for (int rep = 0; rep < 30; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = static_cast<int>(rng.below(6));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    const std::vector<double> caps(static_cast<std::size_t>(inst.size()), 1e9);
    EXPECT_NEAR(
        flow::scheme_throughput_with_download_caps(sol.scheme, caps),
        flow::scheme_throughput(sol.scheme), 1e-6);
  }
}

TEST(NodeCaps, TightCapBindsThroughput) {
  BroadcastScheme s(3);
  s.add(0, 1, 2.0);
  s.add(0, 2, 1.0);
  s.add(1, 2, 1.0);
  // Unlimited: node 2 receives 2.0 total.
  EXPECT_NEAR(flow::scheme_throughput_with_download_caps(s, {0, 9, 9}), 2.0,
              1e-9);
  // Download cap 1.5 at node 2 binds it.
  EXPECT_NEAR(flow::scheme_throughput_with_download_caps(s, {0, 9, 1.5}), 1.5,
              1e-9);
  // Capping the relay node 1 binds twice: node 1 itself can only receive
  // 0.5 (throughput is the min over all sinks), and the path through it to
  // node 2 shrinks too.
  EXPECT_NEAR(flow::scheme_throughput_with_download_caps(s, {0, 0.5, 9}), 0.5,
              1e-9);
}

// For schemes with uniform inflow T, download caps of exactly T suffice:
// quantifies the paper's "input bandwidth is large enough" assumption.
TEST(NodeCaps, UniformCapEqualToTSuffices) {
  util::Xoshiro256 rng(82);
  for (int rep = 0; rep < 25; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = static_cast<int>(rng.below(5));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-6) continue;
    const double needed =
        flow::minimal_uniform_download_cap(sol.scheme, sol.throughput);
    EXPECT_LE(needed, sol.throughput * (1.0 + 1e-6));
    // And it cannot be less: any cap below T starves every node.
    EXPECT_GE(needed, sol.throughput * (1.0 - 1e-3));
  }
}

// ---------- platform / scheme IO ----------

TEST(InstanceIo, ParsePlatformWithLabelsAndComments) {
  const std::string text = R"(# test platform
source 24
open 20 relay-a
guarded 6 home   # NAT'd
open 12
)";
  const net::PlatformFile file = net::parse_platform_string(text);
  EXPECT_DOUBLE_EQ(file.instance.b(0), 24.0);
  EXPECT_EQ(file.instance.n(), 2);
  EXPECT_EQ(file.instance.m(), 1);
  ASSERT_EQ(file.labels.size(), 4u);
  EXPECT_EQ(file.labels[1], "relay-a");
  EXPECT_EQ(file.labels[2], "open2");
  EXPECT_EQ(file.labels[3], "home");
  // Labels are indexed by original id: sorted node 1 (bw 20) -> input 1.
  EXPECT_EQ(file.labels[static_cast<std::size_t>(file.instance.original_id(1))],
            "relay-a");
}

TEST(InstanceIo, ParseErrorsCarryLineNumbers) {
  EXPECT_THROW(net::parse_platform_string("open 5\n"), std::invalid_argument);
  EXPECT_THROW(net::parse_platform_string("source 5\nopen\n"),
               std::invalid_argument);
  EXPECT_THROW(net::parse_platform_string("source 5\nwat 3\n"),
               std::invalid_argument);
  EXPECT_THROW(net::parse_platform_string("source 5\nopen -2\n"),
               std::invalid_argument);
  EXPECT_THROW(net::parse_platform_string("source 5\nsource 6\n"),
               std::invalid_argument);
}

TEST(InstanceIo, PlatformRoundTrip) {
  const Instance inst = testing::fig1_instance();
  const net::PlatformFile round =
      net::parse_platform_string(net::serialize_platform(inst));
  ASSERT_EQ(round.instance.size(), inst.size());
  for (int i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(round.instance.b(i), inst.b(i));
    EXPECT_EQ(round.instance.is_guarded(i), inst.is_guarded(i));
  }
}

TEST(InstanceIo, SchemeRoundTrip) {
  const Instance inst = testing::fig1_instance();
  const AcyclicSolution sol = solve_acyclic(inst);
  const BroadcastScheme round = net::parse_scheme_string(
      net::serialize_scheme(sol.scheme), inst.size());
  EXPECT_EQ(round.edge_count(), sol.scheme.edge_count());
  for (int i = 0; i < inst.size(); ++i) {
    for (const auto& [to, r] : sol.scheme.out_edges(i)) {
      EXPECT_NEAR(round.rate(i, to), r, 1e-9);
    }
  }
}

TEST(InstanceIo, SchemeParseRejectsGarbage) {
  EXPECT_THROW(net::parse_scheme_string("0 oops 1.0\n", 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace bmp
