// Parameterized property suites (TEST_P) sweeping the paper's claims over
// instance-shape grids:
//
//  * TightHomogeneousWords — Lemmas 11.4–11.7 / Theorem 6.2's case rule in
//    exact arithmetic: on tight homogeneous instances, ω1 carries 5/7 when
//    o >= 1 and ω2 when o <= 1, for every (n, m, Delta) in the grid.
//  * PipelineInvariants — end-to-end invariants of solve_acyclic on random
//    instances of every (n, m) shape.
//  * OrderDominance — Lemma 4.2: increasing orders dominate arbitrary
//    orders (checked against the order-restricted LP oracle).
//  * CyclicOpenSweep — Theorem 5.2 invariants across sizes and loads.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/exact.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/core/omega_words.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/lp/throughput_lp.hpp"
#include "bmp/theory/instances.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

using util::Rational;

// ---------------------------------------------------------------- ω words

class TightHomogeneousWords
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TightHomogeneousWords, OmegaWordsCarryFiveSevenths) {
  const auto [n, m] = GetParam();
  const Rational five_sevenths(5, 7);
  for (const Rational& delta :
       {Rational(0), Rational(n, 2), Rational(n, 4), Rational(n)}) {
    const RationalInstance inst = theory::tight_homogeneous_rational(n, m, delta);
    ASSERT_EQ(cyclic_upper_bound(inst), Rational(1));
    const Rational o = inst.b(1);  // homogeneous open bandwidth
    const Rational t1 = word_throughput_exact(inst, omega1(n, m));
    const Rational t2 = word_throughput_exact(inst, omega2(n, m));
    // Theorem 6.2 statement (5): the case rule picks a 5/7-carrying word.
    // The paper's case analysis assumes n >= 1, m >= 2, n+m >= 4 ("other
    // cases are trivial or have been considered above" — e.g. (n,m)=(1,2)
    // is the Fig. 18 family, where only the max carries 5/7).
    if (m >= 2 && n + m >= 4) {
      if (!(o < Rational(1))) {
        EXPECT_GE(t1, five_sevenths)
            << "n=" << n << " m=" << m << " delta=" << delta << " o=" << o;
      } else {
        EXPECT_GE(t2, five_sevenths)
            << "n=" << n << " m=" << m << " delta=" << delta << " o=" << o;
      }
    }
    // And the max always does.
    EXPECT_GE(util::max(t1, t2), five_sevenths);
    // Sanity: word throughputs never exceed the cyclic optimum 1.
    EXPECT_LE(t1, Rational(1));
    EXPECT_LE(t2, Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TightHomogeneousWords,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 9, 12, 16),
                       ::testing::Values(1, 2, 3, 4, 5, 7, 9, 12, 16)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------ pipeline invariants

class PipelineInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineInvariants, SolveAcyclicContracts) {
  const auto [n, m] = GetParam();
  util::Xoshiro256 rng(0xAB00 + static_cast<std::uint64_t>(n) * 131 +
                       static_cast<std::uint64_t>(m));
  for (int rep = 0; rep < 15; ++rep) {
    const Instance inst = testing::random_instance(rng, n, m, 0.1, 25.0);
    const double t_star = cyclic_upper_bound(inst);
    const AcyclicSolution sol = solve_acyclic(inst);
    // Throughput bounds (Thm 6.2 + Lemma 5.1).
    EXPECT_LE(sol.throughput, t_star + 1e-9);
    EXPECT_GE(sol.throughput, 5.0 / 7.0 * t_star - 1e-7);
    if (sol.throughput <= 1e-9) continue;
    // Structural contracts.
    EXPECT_TRUE(sol.scheme.validate(inst).empty());
    EXPECT_TRUE(sol.scheme.is_acyclic());
    EXPECT_LE(sol.scheme.max_inflow_deviation(sol.throughput),
              1e-6 * std::max(1.0, sol.throughput));
    // Degree contracts (Thm 4.1).
    int plus3 = 0;
    for (int i = 0; i < inst.size(); ++i) {
      const int base =
          static_cast<int>(std::ceil(inst.b(i) / sol.throughput - 1e-9));
      const int over = sol.scheme.out_degree(i) - base;
      if (inst.is_guarded(i)) {
        EXPECT_LE(over, 1);
      } else {
        EXPECT_LE(over, 3);
        if (over == 3) ++plus3;
      }
    }
    EXPECT_LE(plus3, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineInvariants,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32),
                       ::testing::Values(0, 1, 4, 8, 16, 32)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------------- Lemma 4.2

class OrderDominance : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OrderDominance, IncreasingOrdersDominateArbitraryOnes) {
  const auto [n, m] = GetParam();
  util::Xoshiro256 rng(0x42 + static_cast<std::uint64_t>(n) * 17 +
                       static_cast<std::uint64_t>(m));
  for (int rep = 0; rep < 4; ++rep) {
    const auto pair = testing::random_int_instance(rng, n, m, 9);
    const double best_increasing =
        optimal_acyclic_exact(pair.rat).throughput.to_double();
    // Random permutations of the non-source nodes (mostly NOT increasing).
    for (int perm = 0; perm < 4; ++perm) {
      std::vector<int> order{0};
      for (int i = 1; i < pair.dbl.size(); ++i) order.push_back(i);
      for (std::size_t i = order.size() - 1; i > 1; --i) {
        std::swap(order[i], order[1 + rng.below(i)]);
      }
      const auto lp = lp::acyclic_order_optimal_lp(pair.dbl, order);
      ASSERT_EQ(lp.status, lp::Status::kOptimal);
      EXPECT_LE(lp.throughput, best_increasing + 1e-6)
          << "an arbitrary order beat every increasing order (Lemma 4.2)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallShapes, OrderDominance,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------------- Theorem 5.2

class CyclicOpenSweep : public ::testing::TestWithParam<int> {};

TEST_P(CyclicOpenSweep, InvariantsAcrossLoads) {
  const int n = GetParam();
  util::Xoshiro256 rng(0xC1C + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = testing::random_instance(rng, n, 0, 0.1, 30.0);
    const double t_max = cyclic_open_optimal(inst);
    for (const double load : {0.4, 0.8, 1.0}) {
      const double T = load * t_max;
      if (T <= 1e-9) continue;
      const BroadcastScheme s = build_cyclic_open(inst, T);
      EXPECT_TRUE(s.validate(inst).empty());
      EXPECT_LE(s.max_inflow_deviation(T), 1e-6 * std::max(1.0, T));
      for (int i = 0; i < inst.size(); ++i) {
        const int cap =
            std::max(static_cast<int>(std::ceil(inst.b(i) / T - 1e-9)) + 2, 4);
        EXPECT_LE(s.out_degree(i), cap);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CyclicOpenSweep,
                         ::testing::Values(1, 2, 3, 5, 9, 17, 33, 65),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace bmp
