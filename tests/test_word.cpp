// Coding-word machinery tests: parsing, the O/G/W recursions of Lemma 4.4
// (checked exactly against Table I), validity conditions, enumeration, and
// the closed-form word throughput vs. bisection cross-check.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/word.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/core/bounds.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

using util::Rational;

TEST(Word, ParseAndPrint) {
  const Word w = make_word("GOG OG");
  EXPECT_EQ(to_string(w), "GOGOG");
  EXPECT_EQ(count_open(w), 2);
  EXPECT_EQ(count_guarded(w), 3);
  EXPECT_THROW(make_word("OXG"), std::invalid_argument);
}

TEST(Word, EnumerateCountsAreBinomial) {
  EXPECT_EQ(enumerate_words(0, 0).size(), 1u);
  EXPECT_EQ(enumerate_words(3, 0).size(), 1u);
  EXPECT_EQ(enumerate_words(2, 3).size(), 10u);  // C(5,2)
  EXPECT_EQ(enumerate_words(4, 4).size(), 70u);  // C(8,4)
  EXPECT_THROW(enumerate_words(-1, 2), std::invalid_argument);
}

TEST(Word, EnumerateIsDuplicateFreeWithRightCounts) {
  const auto words = enumerate_words(3, 2);
  for (std::size_t a = 0; a < words.size(); ++a) {
    EXPECT_EQ(count_open(words[a]), 3);
    EXPECT_EQ(count_guarded(words[a]), 2);
    for (std::size_t b = a + 1; b < words.size(); ++b) {
      EXPECT_NE(to_string(words[a]), to_string(words[b]));
    }
  }
}

// Table I of the paper: execution of Algorithm 2 on the Fig. 1 instance at
// T = 4. States after each letter of GOGOG.
TEST(PrefixState, ReproducesTableIExactly) {
  const RationalInstance inst = testing::fig1_rational();
  const Rational T(4);
  auto st = PrefixState<Rational>::initial(inst);
  EXPECT_EQ(st.open_avail, Rational(6));
  EXPECT_EQ(st.guarded_avail, Rational(0));
  EXPECT_EQ(st.open_open, Rational(0));

  const struct {
    char letter;
    std::int64_t O, G, W;
  } expected[] = {
      {'G', 2, 4, 0}, {'O', 7, 0, 0}, {'G', 3, 1, 0}, {'O', 5, 0, 3}, {'G', 1, 1, 3},
  };
  for (const auto& step : expected) {
    const Letter l = step.letter == 'O' ? Letter::kOpen : Letter::kGuarded;
    ASSERT_TRUE(st.can_append(l, inst, T));
    st.append(l, inst, T);
    EXPECT_EQ(st.open_avail, Rational(step.O));
    EXPECT_EQ(st.guarded_avail, Rational(step.G));
    EXPECT_EQ(st.open_open, Rational(step.W));
  }
}

TEST(CheckWord, Fig1WordsAtT4) {
  const RationalInstance inst = testing::fig1_rational();
  // Both the greedy word (Fig. 5) and the Fig. 2 word are valid at T=4.
  EXPECT_TRUE(check_word(inst, make_word("GOGOG"), Rational(4)));
  EXPECT_TRUE(check_word(inst, make_word("GOOGG"), Rational(4)));
  // The all-guarded-first word is not: b0=6 cannot feed two guarded nodes.
  EXPECT_FALSE(check_word(inst, make_word("GGOOG"), Rational(4)));
  // Wrong letter counts are rejected.
  EXPECT_FALSE(check_word(inst, make_word("GOGO"), Rational(4)));
}

TEST(CheckWord, MonotoneInT) {
  const Instance inst = testing::fig1_instance();
  const Word w = make_word("GOGOG");
  bool prev_ok = true;
  for (double T = 0.0; T <= 6.0; T += 0.05) {
    const bool ok = check_word(inst, w, T);
    if (!prev_ok) EXPECT_FALSE(ok) << "validity must be an interval, T=" << T;
    prev_ok = ok;
  }
}

TEST(WordThroughput, ExactOnFig1Words) {
  const RationalInstance inst = testing::fig1_rational();
  EXPECT_EQ(word_throughput_exact(inst, make_word("GOGOG")), Rational(4));
  EXPECT_EQ(word_throughput_exact(inst, make_word("GOOGG")), Rational(4));
}

TEST(WordThroughput, ExactValueIsTightBoundary) {
  util::Xoshiro256 rng(99);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(4));
    const int m = static_cast<int>(rng.below(4));
    const auto pair = testing::random_int_instance(rng, n, m);
    const auto words = enumerate_words(n, m);
    const Word& w = words[rng.below(words.size())];
    const Rational t = word_throughput_exact(pair.rat, w);
    EXPECT_TRUE(check_word(pair.rat, w, t)) << to_string(w);
    const Rational above = t * Rational(1000001, 1000000);
    if (t > Rational(0)) {
      const bool still_valid = check_word(pair.rat, w, above);
      EXPECT_FALSE(still_valid) << to_string(w);
    }
  }
}

TEST(WordThroughput, BisectionMatchesClosedForm) {
  util::Xoshiro256 rng(7);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(5));
    const int m = static_cast<int>(rng.below(5));
    const Instance inst = testing::random_instance(rng, n, m);
    const auto words = enumerate_words(n, m);
    const Word& w = words[rng.below(words.size())];
    const double closed = word_throughput_closed_form(inst, w);
    const double bisect = word_throughput(inst, w);
    EXPECT_NEAR(closed, bisect, 1e-7 * std::max(1.0, closed)) << to_string(w);
  }
}

TEST(WordThroughput, EmptyWordReturnsSourceBandwidth) {
  const Instance inst(3.5, {}, {});
  EXPECT_DOUBLE_EQ(word_throughput_closed_form(inst, {}), 3.5);
  EXPECT_DOUBLE_EQ(word_throughput(inst, {}), 3.5);
}

TEST(WordThroughput, MismatchedWordThrows) {
  const Instance inst = testing::fig1_instance();
  EXPECT_THROW(word_throughput_closed_form(inst, make_word("GG")),
               std::invalid_argument);
}

// Open-only sanity: for m = 0 the only word is O^n and its throughput is
// the §III.B closed form min(b0, S_{n-1}/n).
TEST(WordThroughput, OpenOnlyMatchesAlgorithm1Formula) {
  util::Xoshiro256 rng(2024);
  for (int rep = 0; rep < 40; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const Instance inst = testing::random_instance(rng, n, 0);
    Word w(static_cast<std::size_t>(n), Letter::kOpen);
    EXPECT_NEAR(word_throughput_closed_form(inst, w), acyclic_open_optimal(inst),
                1e-9);
  }
}

}  // namespace
}  // namespace bmp
