// Differential tests for the tiered verification engine (flow/verify.hpp):
// on random acyclic, cyclic, and post-churn restricted/repaired schemes the
// fast path must pick the expected tier deterministically and agree with
// the Dinic-per-sink oracle within 1e-9 (relative to the rate scale).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/engine/session.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/flow/verify.hpp"
#include "bmp/sim/churn.hpp"
#include "bmp/util/thread_pool.hpp"
#include "test_helpers.hpp"

namespace bmp::flow {
namespace {

double tol_for(double reference) {
  return 1e-9 * std::max(1.0, std::abs(reference));
}

/// Random digraph scheme; `cyclic` guarantees at least one directed cycle.
BroadcastScheme random_scheme(util::Xoshiro256& rng, int num_nodes,
                              bool cyclic) {
  BroadcastScheme scheme(num_nodes);
  const int edges = num_nodes * 3;
  for (int e = 0; e < edges; ++e) {
    const int from = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_nodes)));
    const int to = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_nodes)));
    if (from == to) continue;
    if (!cyclic && from > to) continue;  // forward edges only => DAG
    scheme.add(from, to, rng.uniform(0.1, 5.0));
  }
  if (cyclic && num_nodes >= 3) {
    // Force a cycle through two non-source nodes.
    scheme.add(1, 2, 0.5);
    scheme.add(2, 1, 0.5);
    scheme.add(0, 1, 0.25);
  }
  return scheme;
}

TEST(Verify, AcyclicSchemesUseTierOneAndMatchOracle) {
  util::Xoshiro256 rng(2026);
  Verifier verifier;
  for (int rep = 0; rep < 40; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(10));
    const int m = static_cast<int>(rng.below(6));
    const Instance instance = bmp::testing::random_instance(rng, n, m);
    const AcyclicSolution solution = solve_acyclic(instance);
    ASSERT_TRUE(solution.scheme.is_acyclic());

    const VerifyResult fast = verifier.verify(solution.scheme);
    const double oracle = scheme_throughput_oracle(solution.scheme);
    EXPECT_EQ(fast.tier, VerifyTier::kAcyclicSweep);
    EXPECT_EQ(fast.maxflow_solves, 0);
    EXPECT_NEAR(fast.throughput, oracle, tol_for(oracle));
  }
  EXPECT_EQ(verifier.stats().calls, 40u);
  EXPECT_EQ(verifier.stats().tier_sweep, 40u);
  EXPECT_EQ(verifier.stats().maxflow_solves, 0u);
}

TEST(Verify, RandomDagsMatchOracle) {
  // DAGs that do NOT come from a word schedule (unequal inflows, skipped
  // nodes): the min-inflow identity must hold for any acyclic overlay.
  util::Xoshiro256 rng(7);
  Verifier verifier;
  for (int rep = 0; rep < 60; ++rep) {
    const int num_nodes = 2 + static_cast<int>(rng.below(12));
    const BroadcastScheme scheme = random_scheme(rng, num_nodes, false);
    ASSERT_TRUE(scheme.is_acyclic());
    const VerifyResult fast = verifier.verify(scheme);
    const double oracle = scheme_throughput_oracle(scheme);
    EXPECT_EQ(fast.tier, VerifyTier::kAcyclicSweep);
    EXPECT_NEAR(fast.throughput, oracle, tol_for(oracle));
  }
}

TEST(Verify, CyclicSchemesUseTierTwoAndMatchOracle) {
  util::Xoshiro256 rng(99);
  Verifier verifier;
  int cyclic_seen = 0;
  for (int rep = 0; rep < 60; ++rep) {
    const int num_nodes = 3 + static_cast<int>(rng.below(12));
    const BroadcastScheme scheme = random_scheme(rng, num_nodes, true);
    const VerifyResult fast = verifier.verify(scheme);
    const double oracle = scheme_throughput_oracle(scheme);
    // Tier choice is a pure function of the overlay's structure.
    const VerifyTier expected = scheme.is_acyclic()
                                    ? VerifyTier::kAcyclicSweep
                                    : VerifyTier::kWarmMaxFlow;
    EXPECT_EQ(fast.tier, expected);
    EXPECT_NEAR(fast.throughput, oracle, tol_for(oracle));
    cyclic_seen += scheme.is_acyclic() ? 0 : 1;
  }
  EXPECT_GT(cyclic_seen, 0);  // the generator must actually exercise tier 2
}

TEST(Verify, Fig1CyclicOptimalScheme) {
  // The hand-built cyclic scheme of throughput 4.4 from test_flow.cpp.
  BroadcastScheme s(6);
  s.add(0, 3, 3.0);  s.add(0, 4, 0.6);  s.add(0, 5, 0.6);
  s.add(0, 1, 0.9);  s.add(0, 2, 0.9);
  s.add(1, 3, 1.4);  s.add(1, 4, 1.9);  s.add(1, 5, 1.7);
  s.add(2, 4, 1.9);  s.add(2, 5, 2.1);  s.add(2, 1, 1.0);
  s.add(3, 1, 2.5);  s.add(3, 2, 1.5);  s.add(4, 2, 1.0);  s.add(5, 2, 1.0);
  ASSERT_FALSE(s.is_acyclic());
  const VerifyResult fast = verify_throughput(s);
  EXPECT_EQ(fast.tier, VerifyTier::kWarmMaxFlow);
  EXPECT_NEAR(fast.throughput, 4.4, 1e-9);
}

TEST(Verify, PostChurnRestrictedAndRepairedSchemesMatchOracle) {
  util::Xoshiro256 rng(515151);
  Verifier verifier;
  for (int rep = 0; rep < 25; ++rep) {
    const int n = 4 + static_cast<int>(rng.below(8));
    const int m = static_cast<int>(rng.below(5));
    const Instance instance = bmp::testing::random_instance(rng, n, m);
    const AcyclicSolution solution = solve_acyclic(instance);

    // Drop 1-2 random non-source nodes.
    std::vector<int> departed;
    departed.push_back(1 + static_cast<int>(
                           rng.below(static_cast<std::uint64_t>(n + m))));
    const int second =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n + m)));
    if (second != departed[0]) departed.push_back(second);
    std::sort(departed.begin(), departed.end());

    const Instance survivors = sim::remove_nodes(instance, departed);
    const BroadcastScheme restricted =
        sim::restrict_scheme(solution.scheme, departed);
    const VerifyResult degraded = verifier.verify(restricted);
    EXPECT_NEAR(degraded.throughput, scheme_throughput_oracle(restricted),
                tol_for(degraded.throughput));

    const engine::RepairResult repair =
        engine::repair_scheme(survivors, restricted, solution.throughput);
    const double oracle = scheme_throughput_oracle(repair.scheme);
    EXPECT_NEAR(repair.throughput, oracle, tol_for(oracle));
    const VerifyResult repaired = verifier.verify(repair.scheme);
    EXPECT_EQ(repaired.tier, repair.scheme.is_acyclic()
                                 ? VerifyTier::kAcyclicSweep
                                 : VerifyTier::kWarmMaxFlow);
    EXPECT_NEAR(repaired.throughput, oracle, tol_for(oracle));
  }
}

TEST(Verify, ForcedTiersAgree) {
  util::Xoshiro256 rng(4242);
  const BroadcastScheme cyclic = random_scheme(rng, 10, true);
  ASSERT_FALSE(cyclic.is_acyclic());

  VerifyOptions oracle_opts;
  oracle_opts.force_tier = true;
  oracle_opts.tier = VerifyTier::kOracle;
  Verifier oracle_verifier(oracle_opts);
  const VerifyResult via_oracle = oracle_verifier.verify(cyclic);
  EXPECT_EQ(via_oracle.tier, VerifyTier::kOracle);
  EXPECT_NEAR(via_oracle.throughput, verify_throughput(cyclic).throughput,
              tol_for(via_oracle.throughput));

  // Tier 1 cannot be forced onto a cyclic overlay.
  VerifyOptions sweep_opts;
  sweep_opts.force_tier = true;
  sweep_opts.tier = VerifyTier::kAcyclicSweep;
  Verifier sweep_verifier(sweep_opts);
  EXPECT_THROW(sweep_verifier.verify(cyclic), std::invalid_argument);
}

TEST(Verify, ParallelSinkSweepMatchesSerial) {
  util::Xoshiro256 rng(777);
  // Large enough to clear parallel_min_sinks with room to spare. Chain +
  // back edge + random chords: every node has positive inflow, so the
  // sweep actually solves every sink.
  const int num_nodes = 400;
  BroadcastScheme scheme(num_nodes);
  for (int v = 1; v < num_nodes; ++v) scheme.add(v - 1, v, rng.uniform(1.0, 4.0));
  scheme.add(num_nodes - 1, 1, 1.0);  // closes a long cycle
  for (int e = 0; e < 2 * num_nodes; ++e) {
    const int from =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(num_nodes)));
    const int to =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(num_nodes)));
    if (from != to) scheme.add(from, to, rng.uniform(0.1, 2.0));
  }
  ASSERT_FALSE(scheme.is_acyclic());

  Verifier serial;
  const VerifyResult s = serial.verify(scheme);

  util::ThreadPool pool(4);
  VerifyOptions parallel_opts;
  parallel_opts.pool = &pool;
  parallel_opts.parallel_min_sinks = 16;
  Verifier parallel(parallel_opts);
  const VerifyResult p = parallel.verify(scheme);

  EXPECT_EQ(p.tier, VerifyTier::kWarmMaxFlow);
  EXPECT_EQ(p.maxflow_solves, num_nodes - 1);
  EXPECT_NEAR(p.throughput, s.throughput, tol_for(s.throughput));
  EXPECT_NEAR(p.throughput, scheme_throughput_oracle(scheme),
              tol_for(s.throughput));
}

TEST(Verify, SingleNodeAndZeroInflowEdgeCases) {
  // A node with zero inflow pins the throughput at zero without a solve.
  BroadcastScheme disconnected(3);
  disconnected.add(0, 1, 2.0);
  const VerifyResult zero = verify_throughput(disconnected);
  EXPECT_DOUBLE_EQ(zero.throughput, 0.0);
  EXPECT_EQ(zero.maxflow_solves, 0);
  EXPECT_DOUBLE_EQ(scheme_throughput_oracle(disconnected), 0.0);
}

TEST(Verify, PlannerRecordsVerifiedThroughput) {
  // verify_plans (default on) must re-measure every computed plan through
  // the tiered verifier and agree with the construction's claimed rate —
  // the differential check that would catch a construction bug in CI.
  util::Xoshiro256 rng(606);
  engine::Planner planner;
  for (int rep = 0; rep < 10; ++rep) {
    const Instance instance = bmp::testing::random_instance(
        rng, 3 + static_cast<int>(rng.below(8)),
        static_cast<int>(rng.below(4)));
    const engine::PlanResponse response =
        planner.plan(instance, engine::Algorithm::kAuto);
    ASSERT_GE(response.verified_throughput, 0.0);
    EXPECT_NEAR(response.verified_throughput, response.throughput,
                1e-6 * std::max(1.0, response.throughput));
  }

  // Cache hits inherit the stored verified value.
  engine::Planner fresh;
  const Instance fig1 = bmp::testing::fig1_instance();
  const engine::PlanResponse first =
      fresh.plan(fig1, engine::Algorithm::kAcyclic);
  const engine::PlanResponse second =
      fresh.plan(fig1, engine::Algorithm::kAcyclic);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_DOUBLE_EQ(second.verified_throughput, first.verified_throughput);

  // Opting out leaves the field unset.
  engine::PlannerConfig config;
  config.verify_plans = false;
  engine::Planner unverified(config);
  const engine::PlanResponse off =
      unverified.plan(fig1, engine::Algorithm::kAcyclic);
  EXPECT_LT(off.verified_throughput, 0.0);
}

TEST(Verify, StatsAccumulateTierCountsAndSolves) {
  util::Xoshiro256 rng(31337);
  Verifier verifier;
  const BroadcastScheme dag = random_scheme(rng, 8, false);
  const BroadcastScheme cyc = random_scheme(rng, 8, true);
  ASSERT_FALSE(cyc.is_acyclic());
  verifier.verify(dag);
  verifier.verify(cyc);
  verifier.verify(dag);
  const VerifyStats& stats = verifier.stats();
  EXPECT_EQ(stats.calls, 3u);
  EXPECT_EQ(stats.tier_sweep, 2u);
  EXPECT_EQ(stats.tier_maxflow, 1u);
  EXPECT_GE(stats.total_us, 0.0);
}

}  // namespace
}  // namespace bmp::flow
