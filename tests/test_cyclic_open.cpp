// Theorem 5.2 cyclic-construction tests: the Fig. 11/12 and Fig. 14/15/17
// worked examples, exact inflow at the cyclic optimum, bandwidth validity,
// the max(ceil(b_i/T)+2, 4) degree bound, and max-flow verification.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/flow/maxflow.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

void expect_valid_cyclic(const Instance& inst, const BroadcastScheme& s, double T) {
  EXPECT_TRUE(s.validate(inst).empty());
  EXPECT_LE(s.max_inflow_deviation(T), 1e-6 * std::max(1.0, T));
  for (int i = 0; i < inst.size(); ++i) {
    const int cap =
        std::max(static_cast<int>(std::ceil(inst.b(i) / T - 1e-9)) + 2, 4);
    EXPECT_LE(s.out_degree(i), cap) << "degree bound violated at node " << i;
  }
}

TEST(CyclicOpen, Fig12TerminalCase) {
  // b = [5,5,3,2], T = 5 = (5+10)/3: Algorithm 1 stalls at i0 = n = 3.
  const Instance inst = testing::fig11_instance();
  const double T = cyclic_open_optimal(inst);
  ASSERT_DOUBLE_EQ(T, 5.0);
  const BroadcastScheme s = build_cyclic_open(inst, T);
  expect_valid_cyclic(inst, s, T);
  EXPECT_FALSE(s.is_acyclic());
  // Fig. 12: C3 returns its M3 = 2 units to C1.
  EXPECT_NEAR(s.rate(3, 1), 2.0, 1e-9);
  EXPECT_NEAR(s.rate(0, 3), 2.0, 1e-9);
  EXPECT_NEAR(flow::scheme_throughput(s), T, 1e-7);
}

TEST(CyclicOpen, Fig15InitialAndInductiveCases) {
  // b = [5,5,4,4,4,3], T = 5: i0 = 3, then inductive insertions of C4, C5.
  const Instance inst = testing::fig14_instance();
  const double T = cyclic_open_optimal(inst);
  ASSERT_DOUBLE_EQ(T, 5.0);  // min(5, 25/5)
  const BroadcastScheme s = build_cyclic_open(inst, T);
  expect_valid_cyclic(inst, s, T);
  EXPECT_FALSE(s.is_acyclic());
  EXPECT_NEAR(flow::scheme_throughput(s), T, 1e-7);
}

TEST(CyclicOpen, NoStallReducesToAlgorithm1) {
  const Instance inst(10.0, {8.0, 6.0, 4.0}, {});
  const double T = 4.0;  // acyclic-feasible: S_2/3 = 8 >= 4
  const BroadcastScheme s = build_cyclic_open(inst, T);
  EXPECT_TRUE(s.is_acyclic());
  expect_valid_cyclic(inst, s, T);
}

TEST(CyclicOpen, RejectsBadInputs) {
  EXPECT_THROW(build_cyclic_open(testing::fig1_instance(), 1.0),
               std::invalid_argument);
  const Instance inst(5.0, {5.0, 3.0, 2.0}, {});
  EXPECT_THROW(build_cyclic_open(inst, 5.1), std::invalid_argument);
  EXPECT_THROW(build_cyclic_open(Instance(5.0, {}, {}), 1.0),
               std::invalid_argument);
}

TEST(CyclicOpen, BeatsAcyclicOnTightInstances) {
  // When b_n is small the acyclic optimum loses S_{n-1}/n vs (b0+O)/n.
  const Instance inst(4.0, {4.0, 4.0, 0.0}, {});
  const double t_cyc = cyclic_open_optimal(inst);  // 4
  const double t_ac = acyclic_open_optimal(inst);  // min(4, 12/3) = 4? S_2=12
  EXPECT_DOUBLE_EQ(t_cyc, 4.0);
  EXPECT_DOUBLE_EQ(t_ac, 4.0);
  const Instance inst2(3.0, {3.0, 3.0, 3.0, 0.0}, {});
  EXPECT_DOUBLE_EQ(cyclic_open_optimal(inst2), 3.0);   // (3+9)/4
  EXPECT_DOUBLE_EQ(acyclic_open_optimal(inst2), 3.0);  // S_3/4 = 12/4
  // A genuinely separating instance: n=2, b=[2,2,0].
  const Instance inst3(2.0, {2.0, 0.0}, {});
  EXPECT_DOUBLE_EQ(cyclic_open_optimal(inst3), 2.0);
  EXPECT_DOUBLE_EQ(acyclic_open_optimal(inst3), 2.0);  // min(2, 4/2)
  // Theorem 6.1 says the gap is at most 1/n; build one with a real gap.
  const Instance inst4(10.0, {10.0, 10.0}, {});
  EXPECT_DOUBLE_EQ(cyclic_open_optimal(inst4), 10.0);   // min(10, 30/2=15)
  EXPECT_DOUBLE_EQ(acyclic_open_optimal(inst4), 10.0);  // min(10, 20/2)
  const Instance inst5(10.0, {6.0, 6.0, 3.0}, {});
  EXPECT_GT(cyclic_open_optimal(inst5), acyclic_open_optimal(inst5));
  const double T = cyclic_open_optimal(inst5);
  const BroadcastScheme s = build_cyclic_open(inst5, T);
  expect_valid_cyclic(inst5, s, T);
  EXPECT_NEAR(flow::scheme_throughput(s), T, 1e-7);
}

TEST(CyclicOpen, PropertySweepAtOptimum) {
  util::Xoshiro256 rng(6001);
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(25));
    const Instance inst = testing::random_instance(rng, n, 0, 0.1, 20.0);
    const double T = cyclic_open_optimal(inst);
    const BroadcastScheme s = build_cyclic_open(inst, T);
    expect_valid_cyclic(inst, s, T);
  }
}

TEST(CyclicOpen, PropertySweepBelowOptimum) {
  util::Xoshiro256 rng(6002);
  for (int rep = 0; rep < 100; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(15));
    const Instance inst = testing::random_instance(rng, n, 0, 0.1, 20.0);
    const double T = cyclic_open_optimal(inst) * rng.uniform(0.3, 0.999);
    if (T <= 1e-6) continue;
    const BroadcastScheme s = build_cyclic_open(inst, T);
    expect_valid_cyclic(inst, s, T);
  }
}

TEST(CyclicOpen, MaxFlowConfirmsThroughputOnRandomInstances) {
  util::Xoshiro256 rng(6003);
  for (int rep = 0; rep < 50; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(12));
    const Instance inst = testing::random_instance(rng, n, 0, 0.1, 20.0);
    const double T = cyclic_open_optimal(inst);
    const BroadcastScheme s = build_cyclic_open(inst, T);
    EXPECT_NEAR(flow::scheme_throughput(s), T, 1e-6 * std::max(1.0, T));
  }
}

// The paper's headline for §V: cyclic reaches min(b0,(b0+O)/n), which can
// strictly beat any acyclic scheme; ratio bounded by Theorem 6.1.
TEST(CyclicOpen, Theorem61RatioBound) {
  util::Xoshiro256 rng(6004);
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(30));
    const Instance inst = testing::random_instance(rng, n, 0, 0.0, 10.0);
    const double ratio =
        acyclic_open_optimal(inst) / std::max(1e-12, cyclic_open_optimal(inst));
    EXPECT_GE(ratio, 1.0 - 1.0 / n - 1e-9) << "n=" << n;
  }
}

}  // namespace
}  // namespace bmp
