// BroadcastScheme container tests: rate accumulation and removal, the
// zero-tolerance behavior that keeps float residue from inflating degrees,
// topology queries, validation and DOT export.
#include <gtest/gtest.h>

#include "bmp/core/scheme.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

TEST(Scheme, AddAccumulatesAndSubtracts) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.5);
  s.add(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(s.rate(0, 1), 2.0);
  s.add(0, 1, -0.5);
  EXPECT_DOUBLE_EQ(s.rate(0, 1), 1.5);
  EXPECT_EQ(s.edge_count(), 1);
}

TEST(Scheme, TinyResidueVanishesButTinyScalesWork) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.0);
  s.add(0, 1, -1.0 + 1e-12);  // residue far below the update's magnitude
  EXPECT_DOUBLE_EQ(s.rate(0, 1), 0.0);
  EXPECT_EQ(s.out_degree(0), 0);
  // Tolerances are relative: a genuinely tiny-scale edge is preserved
  // (platforms measured in bit/s must work like Gbit/s ones).
  s.add(0, 2, 1e-12);
  EXPECT_EQ(s.edge_count(), 1);
  EXPECT_DOUBLE_EQ(s.rate(0, 2), 1e-12);
}

TEST(Scheme, RejectsBadEdges) {
  BroadcastScheme s(3);
  EXPECT_THROW(s.add(0, 0, 1.0), std::invalid_argument);   // self loop
  EXPECT_THROW(s.add(0, 5, 1.0), std::out_of_range);       // bad id
  EXPECT_THROW(s.add(-1, 1, 1.0), std::out_of_range);
  s.add(0, 1, 1.0);
  EXPECT_THROW(s.add(0, 1, -2.0), std::invalid_argument);  // below zero
  EXPECT_THROW(BroadcastScheme(0), std::invalid_argument);
}

TEST(Scheme, RatesAndDegrees) {
  BroadcastScheme s(4);
  s.add(0, 1, 2.0);
  s.add(0, 2, 3.0);
  s.add(1, 3, 1.0);
  s.add(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(s.out_rate(0), 5.0);
  EXPECT_DOUBLE_EQ(s.in_rate(3), 2.0);
  EXPECT_EQ(s.out_degree(0), 2);
  EXPECT_EQ(s.in_degree(3), 2);
  EXPECT_EQ(s.max_out_degree(), 2);
  EXPECT_DOUBLE_EQ(s.total_rate(), 7.0);
}

TEST(Scheme, TopologicalOrderOnDag) {
  BroadcastScheme s(4);
  s.add(0, 2, 1.0);
  s.add(2, 1, 1.0);
  s.add(1, 3, 1.0);
  ASSERT_TRUE(s.is_acyclic());
  const std::vector<int> topo = s.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<int> pos(4);
  for (int p = 0; p < 4; ++p) pos[static_cast<std::size_t>(topo[static_cast<std::size_t>(p)])] = p;
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[2], pos[1]);
  EXPECT_LT(pos[1], pos[3]);
}

TEST(Scheme, CycleDetection) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  EXPECT_TRUE(s.is_acyclic());
  s.add(2, 1, 0.5);
  EXPECT_FALSE(s.is_acyclic());
  EXPECT_TRUE(s.topological_order().empty());
  // Removing the back edge restores acyclicity.
  s.add(2, 1, -0.5);
  EXPECT_TRUE(s.is_acyclic());
}

TEST(Scheme, ValidateBandwidthAndFirewall) {
  const Instance inst(2.0, {1.0}, {1.0, 1.0});
  BroadcastScheme s(inst.size());
  s.add(0, 2, 1.5);
  s.add(0, 3, 1.0);  // source over budget: 2.5 > 2.0
  s.add(2, 3, 0.5);  // guarded -> guarded
  const auto issues = s.validate(inst);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_NE(issues[0].find("bandwidth"), std::string::npos);
  EXPECT_NE(issues[1].find("firewall"), std::string::npos);
  // Mismatched sizes reported.
  BroadcastScheme wrong(2);
  EXPECT_EQ(wrong.validate(inst).size(), 1u);
}

TEST(Scheme, InflowDeviation) {
  BroadcastScheme s(3);
  s.add(0, 1, 2.0);
  s.add(0, 2, 1.5);
  EXPECT_DOUBLE_EQ(s.max_inflow_deviation(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.max_inflow_deviation(1.75), 0.25);
}

TEST(Scheme, DotExportContainsEdges) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.25);
  s.add(1, 2, 1.0);
  const std::string dot = s.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("C0 -> C1"), std::string::npos);
  EXPECT_NE(dot.find("1.25"), std::string::npos);
}

TEST(Scheme, OutEdgesAreSortedByTarget) {
  BroadcastScheme s(5);
  s.add(0, 4, 1.0);
  s.add(0, 1, 1.0);
  s.add(0, 3, 1.0);
  int prev = -1;
  for (const auto& [to, r] : s.out_edges(0)) {
    EXPECT_GT(to, prev);
    prev = to;
  }
}

}  // namespace
}  // namespace bmp
