// Algorithm 1 (§III.B) tests: optimal throughput, the ceil(b_i/T)+1 degree
// bound, acyclicity, exact inflow, and the partial variant used by the
// cyclic construction.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/acyclic_open.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/flow/maxflow.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

void expect_valid_acyclic_scheme(const Instance& inst, const BroadcastScheme& s,
                                 double T) {
  EXPECT_TRUE(s.validate(inst).empty());
  EXPECT_TRUE(s.is_acyclic());
  EXPECT_LE(s.max_inflow_deviation(T), 1e-7 * std::max(1.0, T));
  for (int i = 0; i < inst.size(); ++i) {
    const int cap = static_cast<int>(std::ceil(inst.b(i) / T - 1e-9)) + 1;
    EXPECT_LE(s.out_degree(i), cap) << "degree bound violated at node " << i;
  }
}

TEST(AcyclicOpen, OptimalOnSimpleInstance) {
  const Instance inst(5.0, {5.0, 3.0, 2.0}, {});
  const double T = acyclic_open_optimal(inst);  // 13/3
  const BroadcastScheme s = build_acyclic_open(inst, T);
  expect_valid_acyclic_scheme(inst, s, T);
  EXPECT_NEAR(flow::scheme_throughput(s), T, 1e-7);
}

TEST(AcyclicOpen, SourceServesFirstReceiverFully) {
  const Instance inst(5.0, {5.0, 4.0, 4.0, 4.0, 3.0}, {});
  const BroadcastScheme s = build_acyclic_open(inst, 4.0);
  EXPECT_DOUBLE_EQ(s.rate(0, 1), 4.0);
}

TEST(AcyclicOpen, ThrowsOnGuardedInstance) {
  EXPECT_THROW(build_acyclic_open(testing::fig1_instance(), 1.0),
               std::invalid_argument);
}

TEST(AcyclicOpen, ThrowsAboveOptimal) {
  const Instance inst(5.0, {5.0, 3.0, 2.0}, {});
  EXPECT_THROW(build_acyclic_open(inst, 13.0 / 3.0 + 0.01), std::invalid_argument);
  EXPECT_THROW(build_acyclic_open(Instance(2.0, {5.0}, {}), 2.5),
               std::invalid_argument);
}

TEST(AcyclicOpen, ZeroThroughputGivesEmptyScheme) {
  const Instance inst(5.0, {5.0, 3.0}, {});
  const BroadcastScheme s = build_acyclic_open(inst, 0.0);
  EXPECT_EQ(s.edge_count(), 0);
}

TEST(AcyclicOpen, PartialStallsAtTheoreticalIndex) {
  // Figure 11: b = [5,5,3,2], T = 5: S_2 = 13 < 3*5 -> i0 = 3.
  const auto partial = build_acyclic_open_partial(testing::fig11_instance(), 5.0);
  ASSERT_TRUE(partial.stalled.has_value());
  EXPECT_EQ(*partial.stalled, 3);
  // Figure 14: b = [5,5,4,4,4,3], T = 5: S_2 = 14 < 15 -> i0 = 3, fed 4 = T-M3.
  const auto partial14 = build_acyclic_open_partial(testing::fig14_instance(), 5.0);
  ASSERT_TRUE(partial14.stalled.has_value());
  EXPECT_EQ(*partial14.stalled, 3);
  EXPECT_NEAR(partial14.scheme.in_rate(3), 4.0, 1e-9);
  // Nodes before i0 are fully served, later ones untouched.
  EXPECT_NEAR(partial14.scheme.in_rate(1), 5.0, 1e-9);
  EXPECT_NEAR(partial14.scheme.in_rate(2), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(partial14.scheme.in_rate(4), 0.0);
  EXPECT_DOUBLE_EQ(partial14.scheme.in_rate(5), 0.0);
}

TEST(AcyclicOpen, PropertySweepRandomInstances) {
  util::Xoshiro256 rng(31337);
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(30));
    const Instance inst = testing::random_instance(rng, n, 0, 0.2, 20.0);
    const double T = acyclic_open_optimal(inst);
    const BroadcastScheme s = build_acyclic_open(inst, T);
    expect_valid_acyclic_scheme(inst, s, T);
  }
}

TEST(AcyclicOpen, WorksAtSubOptimalRates) {
  util::Xoshiro256 rng(4242);
  for (int rep = 0; rep < 100; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(15));
    const Instance inst = testing::random_instance(rng, n, 0);
    const double T = acyclic_open_optimal(inst) * rng.uniform(0.1, 0.999);
    const BroadcastScheme s = build_acyclic_open(inst, T);
    expect_valid_acyclic_scheme(inst, s, T);
  }
}

TEST(AcyclicOpen, SenderOnlyFeedsLaterNodes) {
  util::Xoshiro256 rng(55);
  for (int rep = 0; rep < 50; ++rep) {
    const int n = 2 + static_cast<int>(rng.below(20));
    const Instance inst = testing::random_instance(rng, n, 0);
    const double T = acyclic_open_optimal(inst);
    const BroadcastScheme s = build_acyclic_open(inst, T);
    for (int i = 0; i < inst.size(); ++i) {
      for (const auto& [to, r] : s.out_edges(i)) {
        EXPECT_GT(to, i) << "Algorithm 1 must only feed forward";
      }
    }
  }
}

TEST(AcyclicOpen, ThroughputVerifiedByMaxFlow) {
  util::Xoshiro256 rng(90);
  for (int rep = 0; rep < 30; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(12));
    const Instance inst = testing::random_instance(rng, n, 0);
    const double T = acyclic_open_optimal(inst);
    const BroadcastScheme s = build_acyclic_open(inst, T);
    EXPECT_NEAR(flow::scheme_throughput(s), T, 1e-6 * std::max(1.0, T));
  }
}

}  // namespace
}  // namespace bmp
