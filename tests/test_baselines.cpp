// Baseline overlay tests: structural validity (bandwidth + firewall),
// known closed forms (star), and the headline comparison property — the
// paper's algorithms never lose to any baseline on throughput.
#include <gtest/gtest.h>

#include "bmp/baselines/baselines.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "test_helpers.hpp"

namespace bmp::baselines {
namespace {

void expect_valid(const Instance& inst, const BaselineResult& r) {
  EXPECT_TRUE(r.scheme.validate(inst).empty()) << r.name;
  EXPECT_GE(r.throughput, 0.0) << r.name;
  EXPECT_LE(r.throughput, cyclic_upper_bound(inst) + 1e-6) << r.name;
}

TEST(Star, ClosedForm) {
  const Instance inst = testing::fig1_instance();
  const BaselineResult r = star(inst);
  EXPECT_NEAR(r.throughput, 6.0 / 5.0, 1e-9);
  EXPECT_EQ(r.scheme.out_degree(0), 5);
  expect_valid(inst, r);
}

TEST(Chain, OpenOnlyPipelinesAtSmallestSender) {
  const Instance inst(5.0, {4.0, 3.0, 2.0}, {});
  const BaselineResult r = chain(inst);
  // Spine 0->1->2->3: every non-last spine node forwards once; bottleneck
  // is b2 = 3 (node 3 sends nothing).
  EXPECT_NEAR(r.throughput, 3.0, 1e-9);
  expect_valid(inst, r);
}

TEST(Chain, AttachesGuardedNodes) {
  const Instance inst = testing::fig1_instance();
  const BaselineResult r = chain(inst);
  expect_valid(inst, r);
  EXPECT_GT(r.throughput, 0.0);
  // Guarded nodes are always fed by open spine nodes.
  for (int g = inst.n() + 1; g < inst.size(); ++g) {
    EXPECT_GT(r.scheme.in_rate(g), 0.0);
  }
}

TEST(KaryTree, ArityTradeoff) {
  // Homogeneous opens: higher arity shortens the tree but splits bandwidth.
  const Instance inst(8.0, std::vector<double>(14, 8.0), {});
  for (int arity = 1; arity <= 4; ++arity) {
    const BaselineResult r = kary_tree(inst, arity);
    expect_valid(inst, r);
    EXPECT_NEAR(r.throughput, 8.0 / arity, 1e-9) << "arity " << arity;
  }
  EXPECT_THROW(kary_tree(inst, 0), std::invalid_argument);
}

TEST(KaryTree, GuardedNodesBecomeLeaves) {
  const Instance inst(6.0, {6.0, 6.0}, {3.0, 3.0, 3.0});
  const BaselineResult r = kary_tree(inst, 2);
  expect_valid(inst, r);
  for (int g = inst.n() + 1; g < inst.size(); ++g) {
    EXPECT_EQ(r.scheme.out_degree(g), 0);
  }
}

TEST(BestKary, PicksTheBestArity) {
  util::Xoshiro256 rng(31);
  for (int rep = 0; rep < 25; ++rep) {
    const Instance inst =
        testing::random_instance(rng, 4 + static_cast<int>(rng.below(10)),
                                 static_cast<int>(rng.below(5)));
    const BaselineResult best = best_kary_tree(inst);
    for (int arity = 1; arity <= 8; ++arity) {
      EXPECT_GE(best.throughput + 1e-9, kary_tree(inst, arity).throughput);
    }
  }
}

TEST(SplitStream, StripesAreValidAndInteriorDisjoint) {
  util::Xoshiro256 rng(32);
  const Instance inst(10.0, {9.0, 8.0, 7.0, 6.0, 5.0, 4.0}, {3.0, 2.0});
  const BaselineResult r = splitstream_like(inst, 3, rng);
  expect_valid(inst, r);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(SplitStream, FallsBackToStarWithoutOpens) {
  util::Xoshiro256 rng(33);
  const Instance inst(9.0, {}, {1.0, 1.0, 1.0});
  const BaselineResult r = splitstream_like(inst, 4, rng);
  EXPECT_NEAR(r.throughput, 3.0, 1e-9);
}

TEST(RandomMesh, RespectsConstraints) {
  util::Xoshiro256 rng(34);
  for (int rep = 0; rep < 25; ++rep) {
    const Instance inst =
        testing::random_instance(rng, 3 + static_cast<int>(rng.below(8)),
                                 static_cast<int>(rng.below(6)));
    const BaselineResult r = random_mesh(inst, 3, rng);
    expect_valid(inst, r);
  }
}

// The central comparison: the paper's optimal acyclic algorithm dominates
// every baseline on every instance (it is optimal among acyclic schemes,
// and the cyclic bound caps the mesh too).
TEST(Comparison, PaperAlgorithmsDominateBaselines) {
  util::Xoshiro256 rng(35);
  for (int rep = 0; rep < 40; ++rep) {
    const int n = 2 + static_cast<int>(rng.below(10));
    const int m = static_cast<int>(rng.below(6));
    const Instance inst = testing::random_instance(rng, n, m, 0.5, 20.0);
    const double ours = optimal_acyclic_throughput(inst);
    EXPECT_GE(ours + 1e-6, star(inst).throughput);
    EXPECT_GE(ours + 1e-6, chain(inst).throughput);
    EXPECT_GE(ours + 1e-6, best_kary_tree(inst).throughput);
    const double ss = splitstream_like(inst, 4, rng).throughput;
    EXPECT_GE(ours + 1e-6, ss);
    // The random mesh is cyclic, so compare against the cyclic optimum.
    EXPECT_GE(cyclic_upper_bound(inst) + 1e-6,
              random_mesh(inst, 3, rng).throughput);
  }
}

}  // namespace
}  // namespace bmp::baselines
