// Lemma 4.6 scheme-construction tests: the Fig. 2 / Fig. 5 worked schemes,
// Table I trace, exact inflow, firewall constraint, conservativeness, and
// the Theorem 4.1 degree bounds on greedy words.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/greedy_test.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/flow/maxflow.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

TEST(WordSchedule, Fig5SchemeFromGreedyWord) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws =
      build_scheme_from_word(inst, make_word("GOGOG"), 4.0, /*with_trace=*/true);
  // Serving order σ = 0 3 1 4 2 5 (Fig. 5 caption).
  EXPECT_EQ(ws.order, (std::vector<int>{3, 1, 4, 2, 5}));
  const BroadcastScheme& s = ws.scheme;
  EXPECT_DOUBLE_EQ(s.rate(0, 3), 4.0);
  EXPECT_DOUBLE_EQ(s.rate(3, 1), 4.0);
  EXPECT_DOUBLE_EQ(s.rate(0, 4), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(1, 4), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(4, 2), 1.0);
  EXPECT_DOUBLE_EQ(s.rate(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(s.rate(2, 5), 4.0);
  EXPECT_EQ(s.edge_count(), 7);
}

TEST(WordSchedule, Fig2SchemeFromAlternativeWord) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws = build_scheme_from_word(inst, make_word("GOOGG"), 4.0);
  const BroadcastScheme& s = ws.scheme;
  EXPECT_DOUBLE_EQ(s.rate(0, 3), 4.0);
  EXPECT_DOUBLE_EQ(s.rate(3, 1), 4.0);
  EXPECT_DOUBLE_EQ(s.rate(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(1, 4), 3.0);
  EXPECT_DOUBLE_EQ(s.rate(2, 4), 1.0);
  EXPECT_DOUBLE_EQ(s.rate(2, 5), 4.0);
}

TEST(WordSchedule, TraceReproducesTableI) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws =
      build_scheme_from_word(inst, make_word("GOGOG"), 4.0, /*with_trace=*/true);
  ASSERT_EQ(ws.trace.size(), 6u);
  const double expected_O[] = {6, 2, 7, 3, 5, 1};
  const double expected_G[] = {0, 4, 0, 1, 0, 1};
  const double expected_W[] = {0, 0, 0, 0, 3, 3};
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(ws.trace[k].open_avail, expected_O[k], 1e-9) << "step " << k;
    EXPECT_NEAR(ws.trace[k].guarded_avail, expected_G[k], 1e-9) << "step " << k;
    EXPECT_NEAR(ws.trace[k].open_open, expected_W[k], 1e-9) << "step " << k;
  }
  EXPECT_EQ(ws.trace[0].prefix, "");
  EXPECT_EQ(ws.trace[5].prefix, "GOGOG");
}

TEST(WordSchedule, InvalidWordThrows) {
  const Instance inst = testing::fig1_instance();
  // GGOOG needs 8 units of open bandwidth upfront; only b0=6 available.
  EXPECT_THROW(build_scheme_from_word(inst, make_word("GGOOG"), 4.0),
               std::invalid_argument);
  EXPECT_THROW(build_scheme_from_word(inst, make_word("GOG"), 4.0),
               std::invalid_argument);
}

TEST(WordSchedule, SchemePropertiesOnRandomGreedyWords) {
  util::Xoshiro256 rng(777);
  int checked = 0;
  for (int rep = 0; rep < 150; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(10));
    const int m = static_cast<int>(rng.below(10));
    const Instance inst = testing::random_instance(rng, n, m, 0.2, 15.0);
    const double T = optimal_acyclic_throughput(inst) * rng.uniform(0.5, 1.0);
    const auto word = greedy_test(inst, T);
    if (!word.has_value() || T <= 0.0) continue;
    ++checked;
    const WordSchedule ws = build_scheme_from_word(inst, *word, T);
    const BroadcastScheme& s = ws.scheme;
    EXPECT_TRUE(s.validate(inst).empty());
    EXPECT_TRUE(s.is_acyclic());
    EXPECT_LE(s.max_inflow_deviation(T), 1e-6 * std::max(1.0, T));
  }
  EXPECT_GT(checked, 100);
}

// Theorem 4.1 degree bounds: guarded <= ceil(b/T)+1; open <= ceil(b/T)+2
// except at most one node at +3.
TEST(WordSchedule, Theorem41DegreeBounds) {
  util::Xoshiro256 rng(888);
  for (int rep = 0; rep < 150; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(12));
    const int m = static_cast<int>(rng.below(12));
    const Instance inst = testing::random_instance(rng, n, m, 0.2, 15.0);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    const double T = sol.throughput;
    int plus3_budget = 1;
    for (int i = 0; i < inst.size(); ++i) {
      const int base = static_cast<int>(std::ceil(inst.b(i) / T - 1e-9));
      const int deg = sol.scheme.out_degree(i);
      if (inst.is_guarded(i)) {
        EXPECT_LE(deg, base + 1) << "guarded node " << i;
      } else if (deg > base + 2) {
        EXPECT_LE(deg, base + 3) << "open node " << i;
        --plus3_budget;
        EXPECT_GE(plus3_budget, 0) << "more than one +3 open node";
      }
    }
  }
}

TEST(WordSchedule, GuardedNodesNeverFeedGuarded) {
  util::Xoshiro256 rng(999);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = 1 + static_cast<int>(rng.below(8));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    for (int i = inst.n() + 1; i < inst.size(); ++i) {
      for (const auto& [to, r] : sol.scheme.out_edges(i)) {
        EXPECT_FALSE(inst.is_guarded(to))
            << "guarded->guarded edge " << i << "->" << to;
      }
    }
  }
}

TEST(WordSchedule, ThroughputVerifiedByMaxFlow) {
  util::Xoshiro256 rng(1010);
  for (int rep = 0; rep < 40; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = static_cast<int>(rng.below(6));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    EXPECT_NEAR(flow::scheme_throughput(sol.scheme), sol.throughput,
                1e-6 * std::max(1.0, sol.throughput));
  }
}

TEST(WordSchedule, ZeroRateYieldsEmptyScheme) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws = build_scheme_from_word(inst, make_word("GOGOG"), 0.0);
  EXPECT_EQ(ws.scheme.edge_count(), 0);
}

}  // namespace
}  // namespace bmp
