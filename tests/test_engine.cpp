// Planning-engine tests: fingerprint canonicalization, plan-cache
// accounting, batch determinism across thread counts, and churn-session
// repair-vs-replan decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/engine/fingerprint.hpp"
#include "bmp/engine/plan_cache.hpp"
#include "bmp/engine/planner.hpp"
#include "bmp/engine/session.hpp"
#include "bmp/flow/maxflow.hpp"
#include "bmp/sim/churn.hpp"
#include "test_helpers.hpp"

namespace bmp::engine {
namespace {

// ------------------------------------------------------------- fingerprint

TEST(Fingerprint, InsensitiveToInputOrder) {
  const Instance a(6.0, {5.0, 3.0, 4.0}, {2.0, 1.0});
  const Instance b(6.0, {4.0, 5.0, 3.0}, {1.0, 2.0});
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, SensitiveToBandwidths) {
  const Instance a(6.0, {5.0, 5.0}, {4.0, 1.0, 1.0});
  const Instance b(6.0, {5.0, 5.0}, {4.0, 1.0, 2.0});
  const Instance c(7.0, {5.0, 5.0}, {4.0, 1.0, 1.0});
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(Fingerprint, SensitiveToClassAssignment) {
  // Same bandwidth multiset, different open/guarded split.
  const Instance a(6.0, {5.0, 4.0}, {3.0});
  const Instance b(6.0, {5.0}, {4.0, 3.0});
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a).n, fingerprint(b).n);
}

TEST(Fingerprint, BucketsAbsorbJitter) {
  const Instance base(6.0, {5.0, 5.0}, {4.0});
  const Instance jittered(6.0 + 1e-9, {5.0 - 2e-9, 5.0}, {4.0 + 1e-9});
  const Instance shifted(6.0, {5.0, 5.1}, {4.0});
  EXPECT_EQ(fingerprint(base, 1e-3), fingerprint(jittered, 1e-3));
  EXPECT_NE(fingerprint(base, 1e-3), fingerprint(shifted, 1e-3));
}

TEST(Fingerprint, InvalidBucketThrows) {
  const Instance a(1.0, {1.0}, {});
  EXPECT_THROW((void)fingerprint(a, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fingerprint(a, -1.0), std::invalid_argument);
  EXPECT_THROW(IncrementalFingerprint(a, 0.0), std::invalid_argument);
}

// ------------------------------------------------- incremental fingerprint

TEST(IncrementalFingerprint, MatchesFullRehashUnderRandomChurn) {
  // The ROADMAP perf-frontier contract: the live fingerprint maintained in
  // O(1) per join/leave delta must equal the full rehash of the survivor
  // platform after *every* event of a randomized churn sequence.
  for (const double bucket : {1e-6, 1e-3}) {
    util::Xoshiro256 rng(2027);
    std::vector<double> open;
    std::vector<double> guarded;
    for (int i = 0; i < 40; ++i) {
      (i % 3 == 0 ? guarded : open)
          .push_back(1.0 + static_cast<double>(rng.below(1000)) / 7.0);
    }
    const double source_bw = 100.0;
    IncrementalFingerprint live(Instance(source_bw, open, guarded), bucket);
    for (int step = 0; step < 300; ++step) {
      const bool join = rng.uniform() < 0.45 || open.size() + guarded.size() < 4;
      const bool pick_guarded = rng.uniform() < 0.4;
      auto& cls = pick_guarded ? guarded : open;
      if (join) {
        const double bandwidth = static_cast<double>(rng.below(1000)) / 3.0;
        cls.push_back(bandwidth);
        if (pick_guarded) {
          live.add_guarded(bandwidth);
        } else {
          live.add_open(bandwidth);
        }
      } else if (!cls.empty()) {
        const std::size_t victim = rng.below(cls.size());
        const double bandwidth = cls[victim];
        cls.erase(cls.begin() + static_cast<std::ptrdiff_t>(victim));
        if (pick_guarded) {
          live.remove_guarded(bandwidth);
        } else {
          live.remove_open(bandwidth);
        }
      }
      const Fingerprint rehash =
          fingerprint(Instance(source_bw, open, guarded), bucket);
      ASSERT_EQ(live.value(), rehash) << "step " << step << " bucket " << bucket;
    }
  }
}

TEST(IncrementalFingerprint, RemoveBySortedIdTracksRemoveNodes) {
  util::Xoshiro256 rng(99);
  Instance platform(50.0, {9.0, 3.0, 7.0, 5.0, 1.0}, {8.0, 2.0, 6.0});
  IncrementalFingerprint live(platform, 1e-6);
  while (platform.size() > 2) {
    const int victim = 1 + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(platform.size() - 1)));
    live.remove(platform, victim);
    platform = sim::remove_nodes(platform, {victim});
    ASSERT_EQ(live.value(), fingerprint(platform, 1e-6));
  }
  EXPECT_THROW(live.remove(platform, 0), std::invalid_argument);
  EXPECT_THROW(live.remove(platform, platform.size()), std::invalid_argument);
}

TEST(IncrementalFingerprint, PlannerAcceptsPrecomputedKeys) {
  // The fingerprint-forwarding plan path must hit the cache entries the
  // rehashing path populated, and vice versa.
  Planner planner;
  const Instance platform(20.0, {6.0, 5.0, 4.0}, {3.0, 2.0});
  const PlanResponse computed = planner.plan(platform, Algorithm::kAcyclic, 0);
  EXPECT_FALSE(computed.cache_hit);
  const IncrementalFingerprint live(platform,
                                    planner.config().fingerprint_bucket);
  const PlanResponse hit =
      planner.plan(platform, Algorithm::kAcyclic, 0, live.value());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_DOUBLE_EQ(hit.throughput, computed.throughput);
  EXPECT_EQ(planner.request_key(platform, Algorithm::kAcyclic, 0),
            planner.request_key(live.value(), Algorithm::kAcyclic, 0));
}

TEST(IncrementalFingerprint, SessionChurnKeysMatchTheRehashedPlatform) {
  // After a full-replan churn event, a fresh request for the session's
  // survivor platform must be a cache hit: the session's incrementally
  // maintained key and the rehashed key agree.
  Planner planner;
  SessionConfig config;
  config.replan_threshold = 1.0;  // replan aggressively to exercise the key
  Session session(planner, Instance(12.0, {8.0, 7.0, 6.0, 5.0, 4.0}, {3.0, 2.0}),
                  config);
  // The three strongest uploaders depart: no repair can reach the old
  // design rate, so the session full-replans through its incremental key.
  const ChurnOutcome outcome = session.on_departure({1, 2, 3});
  ASSERT_TRUE(outcome.full_replan);
  const PlanResponse again =
      planner.plan(session.instance(), config.algorithm, config.max_out_degree);
  EXPECT_TRUE(again.cache_hit);
}

// -------------------------------------------------------------- plan cache

std::shared_ptr<const PlanResponse> dummy_plan(double throughput) {
  auto response = std::make_shared<PlanResponse>();
  response->throughput = throughput;
  return response;
}

Fingerprint key_of(std::uint64_t h) {
  Fingerprint key;
  key.hash = h;
  key.n = 1;
  key.m = 0;
  return key;
}

TEST(PlanCache, HitMissAccounting) {
  PlanCache cache(8, 2);
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  cache.insert(key_of(1), dummy_plan(4.0));
  const auto hit = cache.lookup(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->throughput, 4.0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is global and predictable.
  PlanCache cache(2, 1);
  cache.insert(key_of(1), dummy_plan(1.0));
  cache.insert(key_of(2), dummy_plan(2.0));
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);  // 1 is now MRU
  cache.insert(key_of(3), dummy_plan(3.0));     // evicts 2
  EXPECT_EQ(cache.lookup(key_of(2)), nullptr);
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);
  EXPECT_NE(cache.lookup(key_of(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(PlanCache, ZeroCapacityDisables) {
  PlanCache cache(0, 4);
  cache.insert(key_of(1), dummy_plan(1.0));
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(PlanCache, ClearEmptiesAllShards) {
  PlanCache cache(32, 4);
  for (std::uint64_t k = 0; k < 20; ++k) cache.insert(key_of(k), dummy_plan(1.0));
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ----------------------------------------------------------------- planner

TEST(Planner, MatchesDirectSolve) {
  const Instance platform = bmp::testing::fig1_instance();
  Planner planner;
  const PlanResponse response =
      planner.plan(PlanRequest{platform, Algorithm::kAcyclic, 0});
  const AcyclicSolution direct = solve_acyclic(platform);
  EXPECT_NEAR(response.throughput, direct.throughput, 1e-9);
  EXPECT_FALSE(response.cache_hit);
  ASSERT_NE(response.scheme, nullptr);
  EXPECT_TRUE(response.scheme->validate(platform).empty());
  EXPECT_NEAR(flow::scheme_throughput(*response.scheme), response.throughput,
              1e-6);
}

TEST(Planner, SecondCallHitsCache) {
  Planner planner;
  const PlanRequest request{bmp::testing::fig1_instance(), Algorithm::kAcyclic, 0};
  const PlanResponse first = planner.plan(request);
  const PlanResponse second = planner.plan(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.scheme.get(), second.scheme.get());  // shared, not copied
  EXPECT_EQ(planner.cache_stats().hits, 1u);
}

TEST(Planner, KeyDependsOnAlgorithmAndBound) {
  Planner planner;
  const Instance platform = bmp::testing::fig1_instance();
  const Fingerprint acyclic =
      planner.request_key(PlanRequest{platform, Algorithm::kAcyclic, 0});
  const Fingerprint autoalg =
      planner.request_key(PlanRequest{platform, Algorithm::kAuto, 0});
  const Fingerprint bounded =
      planner.request_key(PlanRequest{platform, Algorithm::kAcyclic, 3});
  EXPECT_NE(acyclic, autoalg);
  EXPECT_NE(acyclic, bounded);
}

TEST(Planner, CyclicOnOpenOnlyReachesTheorem52) {
  const Instance platform = bmp::testing::fig14_instance();
  Planner planner;
  const PlanResponse response =
      planner.plan(PlanRequest{platform, Algorithm::kCyclic, 0});
  EXPECT_EQ(response.algorithm, Algorithm::kCyclic);
  EXPECT_NEAR(response.throughput, cyclic_open_optimal(platform), 1e-9);
  EXPECT_TRUE(response.scheme->validate(platform).empty());
}

TEST(Planner, CyclicFallsBackWithGuardedNodes) {
  Planner planner;
  const PlanResponse response = planner.plan(
      PlanRequest{bmp::testing::fig1_instance(), Algorithm::kCyclic, 0});
  EXPECT_EQ(response.algorithm, Algorithm::kAcyclic);
}

TEST(Planner, AutoHonorsDegreeBound) {
  bmp::util::Xoshiro256 rng(5);
  Planner planner;
  for (int rep = 0; rep < 10; ++rep) {
    const Instance platform = bmp::testing::random_instance(rng, 8, 4);
    const PlanResponse bounded =
        planner.plan(PlanRequest{platform, Algorithm::kAuto, 3});
    if (bounded.degree_bound_met) {
      EXPECT_LE(bounded.max_degree, 3);
    }
    EXPECT_TRUE(bounded.scheme->validate(platform).empty());
  }
}

TEST(Planner, BatchDeterministicAcrossThreadCounts) {
  bmp::util::Xoshiro256 rng(11);
  std::vector<PlanRequest> stream;
  for (int r = 0; r < 40; ++r) {
    // 10 distinct platforms, each requested 4 times.
    bmp::util::Xoshiro256 fork = rng.fork(static_cast<std::uint64_t>(r % 10));
    stream.push_back(PlanRequest{
        bmp::testing::random_instance(fork, 10, 5), Algorithm::kAuto, 0});
  }

  std::vector<std::vector<PlanResponse>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    PlannerConfig config;
    config.threads = threads;
    Planner planner(config);
    runs.push_back(planner.plan_batch(stream));
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_DOUBLE_EQ(runs[run][i].throughput, runs[0][i].throughput);
      EXPECT_EQ(runs[run][i].algorithm, runs[0][i].algorithm);
      EXPECT_EQ(runs[run][i].max_degree, runs[0][i].max_degree);
      EXPECT_EQ(runs[run][i].cache_hit, runs[0][i].cache_hit);
      EXPECT_EQ(runs[run][i].scheme->edge_count(), runs[0][i].scheme->edge_count());
    }
  }
}

TEST(Planner, BatchDedupesDuplicates) {
  PlannerConfig config;
  config.threads = 4;
  Planner planner(config);
  const std::vector<PlanRequest> stream(
      8, PlanRequest{bmp::testing::fig1_instance(), Algorithm::kAcyclic, 0});
  const std::vector<PlanResponse> responses = planner.plan_batch(stream);
  ASSERT_EQ(responses.size(), 8u);
  EXPECT_FALSE(responses[0].cache_hit);
  for (std::size_t i = 1; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].cache_hit);
    EXPECT_EQ(responses[i].scheme.get(), responses[0].scheme.get());
  }
  // Only one miss was ever planned.
  EXPECT_EQ(planner.cache_stats().misses, 1u);
  EXPECT_EQ(planner.cache_stats().insertions, 1u);
}

// ----------------------------------------------------------------- session

TEST(Session, RepairRestoresOrphanedNode) {
  // Generous slack: the source alone could re-feed a lost subtree.
  const Instance platform(20.0, {10.0, 10.0, 10.0}, {5.0, 5.0});
  Planner planner;
  Session session(planner, platform);
  const double design = session.design_rate();
  ASSERT_GT(design, 0.0);

  const ChurnOutcome outcome = session.on_departure({1});
  EXPECT_FALSE(outcome.full_replan);
  EXPECT_GE(outcome.achieved_rate, 0.9 * design - 1e-9);
  EXPECT_EQ(session.incremental_replans(), 1);
  EXPECT_EQ(session.full_replans(), 0);
  EXPECT_EQ(session.instance().size(), platform.size() - 1);
  // The repaired overlay is valid and its verified throughput is honest.
  EXPECT_TRUE(session.scheme().validate(session.instance()).empty());
  EXPECT_NEAR(flow::scheme_throughput(session.scheme()),
              session.current_rate(), 1e-6);
}

TEST(Session, CatastrophicDepartureForcesFullReplan) {
  // Removing the big open nodes leaves survivors that cannot sustain the
  // design rate: Lemma 5.1 caps them strictly below 90% of it.
  const Instance platform(10.0, {10.0, 10.0, 10.0, 10.0}, {1.0, 1.0});
  Planner planner;
  Session session(planner, platform);
  const double design = session.design_rate();
  ASSERT_GT(design, 0.0);

  const ChurnOutcome outcome = session.on_departure({1, 2, 3});
  const Instance& survivors = session.instance();
  EXPECT_TRUE(outcome.full_replan);
  EXPECT_EQ(session.full_replans(), 1);
  // Full replan resets the design rate to the survivors' optimum.
  EXPECT_NEAR(session.design_rate(), solve_acyclic(survivors).throughput, 1e-9);
  EXPECT_TRUE(session.scheme().validate(survivors).empty());
}

TEST(Session, EmptyDepartureIsNoop) {
  Planner planner;
  Session session(planner, bmp::testing::fig1_instance());
  const ChurnOutcome outcome = session.on_departure({});
  EXPECT_EQ(outcome.departed, 0);
  EXPECT_DOUBLE_EQ(outcome.achieved_rate, session.design_rate());
  EXPECT_EQ(session.incremental_replans(), 0);
  EXPECT_EQ(session.full_replans(), 0);
}

TEST(Session, BadDepartureIdThrows) {
  Planner planner;
  Session session(planner, bmp::testing::fig1_instance());
  EXPECT_THROW(session.on_departure({0}), std::invalid_argument);
  EXPECT_THROW(session.on_departure({99}), std::invalid_argument);
}

TEST(RepairScheme, PatchKeepsSchemeValid) {
  bmp::util::Xoshiro256 rng(21);
  for (int rep = 0; rep < 8; ++rep) {
    const Instance platform = bmp::testing::random_instance(rng, 12, 6);
    const AcyclicSolution solution = solve_acyclic(platform);
    if (solution.throughput <= 0.0) continue;
    const std::vector<int> departed{3, 9};
    const Instance survivors = sim::remove_nodes(platform, departed);
    const BroadcastScheme restricted =
        sim::restrict_scheme(solution.scheme, departed);
    const RepairResult repair =
        repair_scheme(survivors, restricted, solution.throughput);
    EXPECT_TRUE(repair.scheme.validate(survivors).empty());
    EXPECT_TRUE(repair.scheme.is_acyclic());
    // Repair can only improve on doing nothing.
    EXPECT_GE(repair.throughput,
              flow::scheme_throughput(restricted) - 1e-9);
  }
}

TEST(Session, CapacitiesExposesPlannedPlatform) {
  const Instance platform = bmp::testing::fig1_instance();
  Planner planner;
  Session session(planner, platform);
  const std::vector<double> caps = session.capacities();
  ASSERT_EQ(caps.size(), static_cast<std::size_t>(platform.size()));
  for (int i = 0; i < platform.size(); ++i) {
    EXPECT_DOUBLE_EQ(caps[static_cast<std::size_t>(i)], platform.b(i));
  }
}

TEST(Session, RescaleIsExact) {
  Planner planner;
  Session session(planner, bmp::testing::fig1_instance());
  const double design = session.design_rate();
  const int edges = session.scheme().edge_count();
  ASSERT_GT(design, 0.0);

  session.rescale(0.25);
  EXPECT_NEAR(session.design_rate(), 0.25 * design, 1e-12);
  EXPECT_NEAR(session.current_rate(), 0.25 * design, 1e-12);
  EXPECT_EQ(session.scheme().edge_count(), edges);  // same overlay, scaled
  EXPECT_TRUE(session.scheme().validate(session.instance()).empty());
  EXPECT_NEAR(flow::scheme_throughput(session.scheme()),
              session.current_rate(), 1e-9);
  // Scaled caps are visible through the broker-facing accessor.
  EXPECT_NEAR(session.capacities()[0],
              0.25 * bmp::testing::fig1_instance().b(0), 1e-12);

  session.rescale(4.0);  // round-trips back to the original platform
  EXPECT_NEAR(session.design_rate(), design, 1e-9);

  EXPECT_THROW(session.rescale(0.0), std::invalid_argument);
  EXPECT_THROW(session.rescale(-1.0), std::invalid_argument);
}

TEST(Session, RescaledSessionStillAbsorbsChurn) {
  const Instance platform(20.0, {10.0, 10.0, 10.0}, {5.0, 5.0});
  Planner planner;
  Session session(planner, platform);
  session.rescale(0.5);
  const double design = session.design_rate();
  const ChurnOutcome outcome = session.on_departure({1});
  EXPECT_GE(outcome.achieved_rate, 0.9 * design - 1e-9);
  EXPECT_TRUE(session.scheme().validate(session.instance()).empty());
}

// -------------------------------------------- repair_scheme edge cases

TEST(RepairScheme, NoSurvivorWithSpareUploadLeavesDeficit) {
  // Source -> 1 -> 2 chain at rate 1 saturates every positive budget;
  // node 3 (zero upload) is orphaned and no survivor has spare upload to
  // re-feed it. The patch must add nothing and stay valid rather than
  // oversubscribe someone.
  const Instance survivors(1.0, {1.0, 0.0, 0.0}, {});
  BroadcastScheme restricted(4);
  restricted.add(0, 1, 1.0);
  restricted.add(1, 2, 1.0);
  const RepairResult repair = repair_scheme(survivors, restricted, 1.0);
  EXPECT_DOUBLE_EQ(repair.added_rate, 0.0);
  EXPECT_TRUE(repair.scheme.validate(survivors).empty());
  EXPECT_DOUBLE_EQ(repair.throughput, 0.0);  // node 3 is unreachable
}

TEST(RepairScheme, SurvivesDepartureOfHighestBandwidthRelay) {
  // Node 1 is the dominant open relay; its departure orphans most of the
  // overlay. Source slack plus the remaining opens must re-feed everyone.
  const Instance platform(20.0, {12.0, 6.0, 6.0}, {3.0, 3.0});
  const AcyclicSolution solution = solve_acyclic(platform);
  ASSERT_GT(solution.throughput, 0.0);
  ASSERT_GT(solution.scheme.out_rate(1), 0.0);  // it really relays

  const std::vector<int> departed{1};
  const Instance survivors = sim::remove_nodes(platform, departed);
  const BroadcastScheme restricted =
      sim::restrict_scheme(solution.scheme, departed);
  const RepairResult repair =
      repair_scheme(survivors, restricted, solution.throughput);
  EXPECT_TRUE(repair.scheme.validate(survivors).empty());
  EXPECT_TRUE(repair.scheme.is_acyclic());
  EXPECT_GE(repair.throughput, flow::scheme_throughput(restricted) - 1e-9);
  EXPECT_GT(repair.added_rate, 0.0);  // the orphans were actually patched
}

TEST(RepairScheme, CyclicOverlayPassesThroughUnpatched) {
  // session.hpp documents cyclic overlays as unpatched: the repair must
  // return the scheme bit-for-bit and still measure its throughput.
  const Instance survivors(2.0, {2.0, 2.0}, {});
  BroadcastScheme cyclic(3);
  cyclic.add(0, 1, 1.0);
  cyclic.add(1, 2, 1.0);
  cyclic.add(2, 1, 0.5);  // closes the 1 <-> 2 cycle
  ASSERT_FALSE(cyclic.is_acyclic());

  const RepairResult repair = repair_scheme(survivors, cyclic, 2.0);
  EXPECT_DOUBLE_EQ(repair.added_rate, 0.0);
  EXPECT_EQ(repair.scheme.edge_count(), cyclic.edge_count());
  for (int i = 0; i < cyclic.num_nodes(); ++i) {
    for (const auto& [to, rate] : cyclic.out_edges(i)) {
      EXPECT_DOUBLE_EQ(repair.scheme.rate(i, to), rate);
    }
  }
  EXPECT_NEAR(repair.throughput, flow::scheme_throughput(cyclic), 1e-12);
}

TEST(RepairScheme, TrimMakesReducedTargetsFeasible) {
  bmp::util::Xoshiro256 rng(33);
  int repaired_to_target = 0;
  for (int rep = 0; rep < 8; ++rep) {
    const Instance platform = bmp::testing::random_instance(rng, 14, 7);
    const AcyclicSolution solution = solve_acyclic(platform);
    if (solution.throughput <= 0.0) continue;
    const std::vector<int> departed{2};
    const Instance survivors = sim::remove_nodes(platform, departed);
    const BroadcastScheme restricted =
        sim::restrict_scheme(solution.scheme, departed);
    const double target = 0.9 * solution.throughput;
    const RepairResult repair = repair_scheme(survivors, restricted, target);
    EXPECT_TRUE(repair.scheme.validate(survivors).empty());
    if (repair.throughput >= target - 1e-6) ++repaired_to_target;
  }
  // One small departure should nearly always be absorbable at 90%.
  EXPECT_GE(repaired_to_target, 6);
}

}  // namespace
}  // namespace bmp::engine
