// LastMile estimator tests (Bedibe substitute, §II.C): exact recovery from
// noiseless matrices, robustness to noise and missing entries, and the
// end-to-end property that the recovered out-bandwidths instantiate a
// broadcast instance whose optimum matches the ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/instance.hpp"
#include "bmp/lastmile/estimator.hpp"
#include "bmp/util/rng.hpp"

namespace bmp::lastmile {
namespace {

TEST(Estimator, RejectsNonSquare) {
  EXPECT_THROW(fit({{1.0, 2.0}}), std::invalid_argument);
}

TEST(Estimator, NoiselessExactRecoveryWhenIdentifiable) {
  // Identifiability: a node's out-capacity is observable only if some peer
  // has larger in-capacity (and vice versa). Using one big "anchor" node
  // makes every other parameter identifiable.
  util::Xoshiro256 rng(91);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t N = 4 + rng.below(8);
    std::vector<double> out(N);
    std::vector<double> in(N);
    for (std::size_t i = 0; i < N; ++i) {
      out[i] = rng.uniform(1.0, 50.0);
      in[i] = rng.uniform(1.0, 50.0);
    }
    out[0] = 100.0;  // anchors
    in[0] = 100.0;
    const Matrix m = synthesize_matrix(out, in, 0.0, rng);
    const Estimate est = fit(m);
    EXPECT_LT(est.rmse, 1e-9);
    for (std::size_t i = 1; i < N; ++i) {
      EXPECT_NEAR(est.out_bw[i], out[i], 1e-6) << "node " << i;
      EXPECT_NEAR(est.in_bw[i], in[i], 1e-6) << "node " << i;
    }
  }
}

TEST(Estimator, FitNeverWorsensInitialRmse) {
  util::Xoshiro256 rng(92);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t N = 5 + rng.below(6);
    std::vector<double> out(N);
    std::vector<double> in(N);
    for (std::size_t i = 0; i < N; ++i) {
      out[i] = rng.uniform(1.0, 50.0);
      in[i] = rng.uniform(1.0, 50.0);
    }
    const Matrix m = synthesize_matrix(out, in, 0.3, rng);
    // Initial heuristic: row/column maxima.
    std::vector<double> out0(N, 0.0);
    std::vector<double> in0(N, 0.0);
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        if (i == j) continue;
        out0[i] = std::max(out0[i], m[i][j]);
        in0[j] = std::max(in0[j], m[i][j]);
      }
    }
    const double initial = model_rmse(m, out0, in0);
    const Estimate est = fit(m);
    EXPECT_LE(est.rmse, initial + 1e-12);
  }
}

TEST(Estimator, ModerateNoiseStaysAccurate) {
  util::Xoshiro256 rng(93);
  std::vector<double> out{100.0, 40.0, 25.0, 10.0, 5.0, 30.0, 18.0, 60.0};
  std::vector<double> in(out.size(), 120.0);  // downloads non-binding
  const Matrix m = synthesize_matrix(out, in, 0.05, rng);
  const Estimate est = fit(m);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_NEAR(est.out_bw[i], out[i], 0.15 * out[i]) << "node " << i;
  }
}

TEST(Estimator, HandlesMissingEntries) {
  util::Xoshiro256 rng(94);
  std::vector<double> out{80.0, 20.0, 35.0, 12.0, 50.0};
  std::vector<double> in{90.0, 70.0, 60.0, 85.0, 75.0};
  Matrix m = synthesize_matrix(out, in, 0.0, rng);
  // Knock out 20% of the measurements.
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      if (i != j && rng.uniform() < 0.2) m[i][j] = -1.0;
    }
  }
  const Estimate est = fit(m);
  EXPECT_LT(est.rmse, 1e-6);
}

TEST(Estimator, SynthesizeValidation) {
  util::Xoshiro256 rng(95);
  EXPECT_THROW(synthesize_matrix({1.0}, {1.0, 2.0}, 0.0, rng),
               std::invalid_argument);
  const Matrix m = synthesize_matrix({1.0, 2.0}, {3.0, 4.0}, 0.0, rng);
  EXPECT_DOUBLE_EQ(m[0][0], -1.0);
  EXPECT_DOUBLE_EQ(m[0][1], 1.0);  // min(out0=1, in1=4)
  EXPECT_DOUBLE_EQ(m[1][0], 2.0);  // min(out1=2, in0=3)
}

// End-to-end: measurements -> estimated instance -> optimal acyclic
// throughput matches the ground-truth instance (the paper's pipeline).
TEST(Estimator, PipelineRecoversGroundTruthThroughput) {
  util::Xoshiro256 rng(96);
  const std::vector<double> out{50.0, 30.0, 22.0, 14.0, 9.0, 6.0};
  std::vector<double> in(out.size(), 100.0);
  const Matrix m = synthesize_matrix(out, in, 0.02, rng);
  const Estimate est = fit(m);

  const auto make_inst = [](const std::vector<double>& bw) {
    const std::vector<double> open(bw.begin() + 1, bw.end());
    return Instance(bw[0], open, {});
  };
  const double truth = optimal_acyclic_throughput(make_inst(out));
  const double recovered = optimal_acyclic_throughput(make_inst(est.out_bw));
  EXPECT_NEAR(recovered, truth, 0.1 * truth);
}

}  // namespace
}  // namespace bmp::lastmile
