// Conservativeness checker tests (Lemma 4.3 machinery): the Fig. 2 scheme
// is conservative, the Fig. 4 scheme is the paper's canonical violation,
// and every scheme built by the word scheduler is conservative by
// construction.
#include <gtest/gtest.h>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/conservative.hpp"
#include "bmp/core/word_schedule.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

TEST(Conservative, OrderFromWordMapsPositions) {
  const Instance inst = testing::fig1_instance();
  const std::vector<int> order = order_from_word(inst, make_word("GOGOG"));
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 4, 2, 5}));
  EXPECT_THROW(order_from_word(inst, make_word("GG")), std::invalid_argument);
}

TEST(Conservative, Fig2SchemeIsConservative) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws = build_scheme_from_word(inst, make_word("GOOGG"), 4.0);
  const auto order = order_from_word(inst, make_word("GOOGG"));
  EXPECT_FALSE(
      find_conservativeness_violation(inst, ws.scheme, order).has_value());
}

TEST(Conservative, Fig4SchemeIsDetected) {
  // The paper's Fig. 4: order σ = 031245; C1 takes 2 units from the source
  // while guarded C3 still has 2 units of unused upload.
  const Instance inst = testing::fig1_instance();
  BroadcastScheme s(inst.size());
  s.add(0, 3, 4.0);
  s.add(0, 1, 2.0);
  s.add(3, 1, 2.0);
  s.add(3, 2, 2.0);
  s.add(1, 2, 2.0);
  s.add(1, 4, 3.0);
  s.add(2, 4, 1.0);
  s.add(2, 5, 4.0);
  ASSERT_TRUE(s.validate(inst).empty());
  ASSERT_LE(s.max_inflow_deviation(4.0), 1e-9);
  const auto order = order_from_word(inst, make_word("GOOGG"));
  const auto violation = find_conservativeness_violation(inst, s, order);
  ASSERT_TRUE(violation.has_value());
  // i = 1 (C3 guarded), j = 0 (source), k = 2 (C1) — the paper's triplet.
  EXPECT_EQ(violation->guarded_node, 3);
  EXPECT_EQ(violation->open_sender, 0);
  EXPECT_EQ(violation->open_receiver, 1);
  EXPECT_NEAR(violation->residual, 2.0, 1e-9);
  EXPECT_FALSE(violation->describe().empty());
}

TEST(Conservative, WordSchedulerIsAlwaysConservative) {
  util::Xoshiro256 rng(0xC0A5);
  for (int rep = 0; rep < 80; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const int m = static_cast<int>(rng.below(8));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    const auto order = order_from_word(inst, sol.word);
    const auto violation =
        find_conservativeness_violation(inst, sol.scheme, order, 1e-6);
    EXPECT_FALSE(violation.has_value())
        << (violation ? violation->describe() : "") << " word "
        << to_string(sol.word);
  }
}

TEST(Conservative, ValidatesOrderInput) {
  const Instance inst = testing::fig1_instance();
  BroadcastScheme s(inst.size());
  EXPECT_THROW(find_conservativeness_violation(inst, s, {1, 0, 2, 3, 4, 5}),
               std::invalid_argument);
  EXPECT_THROW(find_conservativeness_violation(inst, s, {0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bmp
