// Depth/delay metric tests (§VII future-work feature): depth analysis on
// hand-built and generated schemes, the feed-order variants of the word
// scheduler, and the depth-vs-degree tradeoff.
#include <gtest/gtest.h>

#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/depth.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/flow/maxflow.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

TEST(Depth, ChainDepths) {
  BroadcastScheme s(4);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  s.add(2, 3, 1.0);
  const DepthReport r = analyze_depth(s);
  EXPECT_EQ(r.depth, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(r.max_depth, 3);
  EXPECT_DOUBLE_EQ(r.mean_depth, 2.0);
  EXPECT_DOUBLE_EQ(r.weighted_depth[3], 3.0);
}

TEST(Depth, WeightedDepthMixesPaths) {
  // Node 2: half its rate at depth 1 (from source), half at depth 2.
  BroadcastScheme s(3);
  s.add(0, 1, 1.0);
  s.add(0, 2, 0.5);
  s.add(1, 2, 0.5);
  const DepthReport r = analyze_depth(s);
  EXPECT_EQ(r.depth[2], 2);
  EXPECT_DOUBLE_EQ(r.weighted_depth[2], 1.5);
}

TEST(Depth, RejectsCyclicSchemes) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  s.add(2, 1, 0.5);
  EXPECT_THROW(analyze_depth(s), std::invalid_argument);
}

TEST(Depth, OrderedBuilderEarliestMatchesPaperBuilder) {
  util::Xoshiro256 rng(61);
  for (int rep = 0; rep < 40; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const int m = static_cast<int>(rng.below(8));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    const BroadcastScheme ordered = build_scheme_from_word_ordered(
        inst, sol.word, sol.throughput, FeedOrder::kEarliestFirst);
    for (int i = 0; i < inst.size(); ++i) {
      for (const auto& [to, r] : sol.scheme.out_edges(i)) {
        EXPECT_NEAR(ordered.rate(i, to), r, 1e-9);
      }
    }
  }
}

TEST(Depth, AllFeedOrdersProduceValidSchemes) {
  util::Xoshiro256 rng(62);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(10));
    const int m = static_cast<int>(rng.below(10));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    for (const auto order : {FeedOrder::kEarliestFirst, FeedOrder::kLatestFirst,
                             FeedOrder::kShallowest}) {
      const BroadcastScheme s =
          build_scheme_from_word_ordered(inst, sol.word, sol.throughput, order);
      EXPECT_TRUE(s.validate(inst).empty());
      EXPECT_TRUE(s.is_acyclic());
      EXPECT_LE(s.max_inflow_deviation(sol.throughput),
                1e-6 * std::max(1.0, sol.throughput));
    }
  }
}

TEST(Depth, ShallowestOrderNeverDeeperThanLatestFirst) {
  util::Xoshiro256 rng(63);
  int strictly_better = 0;
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 2 + static_cast<int>(rng.below(12));
    const int m = static_cast<int>(rng.below(12));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    const auto depth_of = [&](FeedOrder order) {
      return analyze_depth(build_scheme_from_word_ordered(
                               inst, sol.word, sol.throughput, order))
          .max_depth;
    };
    const int shallow = depth_of(FeedOrder::kShallowest);
    const int latest = depth_of(FeedOrder::kLatestFirst);
    EXPECT_LE(shallow, latest);
    if (shallow < latest) ++strictly_better;
  }
  EXPECT_GT(strictly_better, 0) << "depth-greedy feeding should matter sometimes";
}

TEST(Depth, Fig5DepthValues) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws = build_scheme_from_word(inst, make_word("GOGOG"), 4.0);
  const DepthReport r = analyze_depth(ws.scheme);
  // C3 <- C0 (1); C1 <- C3 (2); C4 <- {C0, C1} (3); C2 <- {C4, C1} (4);
  // C5 <- C2 (5).
  EXPECT_EQ(r.depth[3], 1);
  EXPECT_EQ(r.depth[1], 2);
  EXPECT_EQ(r.depth[4], 3);
  EXPECT_EQ(r.depth[2], 4);
  EXPECT_EQ(r.depth[5], 5);
}

}  // namespace
}  // namespace bmp
