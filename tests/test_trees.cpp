// Broadcast-tree decomposition tests (§II.C substrate): hand instances,
// property sweeps over schemes produced by Algorithm 1 and the guarded
// word scheduler, tree-count bounds, and validator behavior.
#include <gtest/gtest.h>

#include "bmp/core/acyclic_open.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/trees/arborescence.hpp"
#include "test_helpers.hpp"

namespace bmp::trees {
namespace {

TEST(Decompose, SingleChainIsOneTree) {
  BroadcastScheme s(3);
  s.add(0, 1, 2.0);
  s.add(1, 2, 2.0);
  const Decomposition d = decompose_acyclic(s, 2.0);
  ASSERT_EQ(d.trees.size(), 1u);
  EXPECT_DOUBLE_EQ(d.trees[0].weight, 2.0);
  EXPECT_EQ(d.trees[0].parent, (std::vector<int>{-1, 0, 1}));
  EXPECT_TRUE(validate_decomposition(s, d, 2.0));
}

TEST(Decompose, TwoParallelSourcesSplit) {
  // Node 2 receives half from 0 directly and half through 1.
  BroadcastScheme s(3);
  s.add(0, 1, 2.0);
  s.add(0, 2, 1.0);
  s.add(1, 2, 1.0);
  const Decomposition d = decompose_acyclic(s, 2.0);
  EXPECT_TRUE(validate_decomposition(s, d, 2.0));
  EXPECT_EQ(d.trees.size(), 2u);
}

TEST(Decompose, RejectsCyclicSchemes) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  s.add(2, 1, 0.5);  // cycle 1 <-> 2
  s.add(0, 2, 0.5);  // hmm keep inflows odd; acyclicity check fires first
  EXPECT_THROW(decompose_acyclic(s, 1.0), std::invalid_argument);
}

TEST(Decompose, RejectsNonUniformInflow) {
  BroadcastScheme s(3);
  s.add(0, 1, 1.0);
  s.add(0, 2, 0.5);
  EXPECT_THROW(decompose_acyclic(s, 1.0), std::invalid_argument);
}

TEST(Decompose, ZeroThroughputIsEmpty) {
  BroadcastScheme s(2);
  const Decomposition d = decompose_acyclic(s, 0.0);
  EXPECT_TRUE(d.trees.empty());
}

TEST(Decompose, Fig5SchemeDecomposes) {
  const Instance inst = testing::fig1_instance();
  const WordSchedule ws = build_scheme_from_word(inst, make_word("GOGOG"), 4.0);
  const Decomposition d = decompose_acyclic(ws.scheme, 4.0);
  EXPECT_TRUE(validate_decomposition(ws.scheme, d, 4.0));
  EXPECT_LE(static_cast<int>(d.trees.size()), ws.scheme.edge_count() + 1);
}

TEST(Decompose, PropertySweepAlgorithm1Schemes) {
  util::Xoshiro256 rng(71);
  for (int rep = 0; rep < 100; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(20));
    const Instance inst = testing::random_instance(rng, n, 0);
    const double T = acyclic_open_optimal(inst);
    if (T <= 1e-9) continue;
    const BroadcastScheme s = build_acyclic_open(inst, T);
    const Decomposition d = decompose_acyclic(s, T);
    EXPECT_TRUE(validate_decomposition(s, d, T)) << "n=" << n;
    EXPECT_LE(static_cast<int>(d.trees.size()), s.edge_count() + 1);
  }
}

TEST(Decompose, PropertySweepGuardedSchemes) {
  util::Xoshiro256 rng(72);
  for (int rep = 0; rep < 80; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const int m = static_cast<int>(rng.below(8));
    const Instance inst = testing::random_instance(rng, n, m);
    const AcyclicSolution sol = solve_acyclic(inst);
    if (sol.throughput <= 1e-9) continue;
    const Decomposition d = decompose_acyclic(sol.scheme, sol.throughput);
    EXPECT_TRUE(validate_decomposition(sol.scheme, d, sol.throughput))
        << "n=" << n << " m=" << m;
  }
}

TEST(Validate, CatchesBadDecompositions) {
  BroadcastScheme s(3);
  s.add(0, 1, 2.0);
  s.add(1, 2, 2.0);
  Decomposition d = decompose_acyclic(s, 2.0);
  // Wrong total weight.
  Decomposition short_d = d;
  short_d.trees[0].weight = 1.0;
  EXPECT_FALSE(validate_decomposition(s, short_d, 2.0));
  // Capacity violation: point node 2's parent at the source (edge 0->2
  // does not exist in the scheme).
  Decomposition wrong_edge = d;
  wrong_edge.trees[0].parent[2] = 0;
  EXPECT_FALSE(validate_decomposition(s, wrong_edge, 2.0));
  // Unreached node that the scheme feeds.
  Decomposition unreached = d;
  unreached.trees[0].parent[2] = -1;
  EXPECT_FALSE(validate_decomposition(s, unreached, 2.0));
}

}  // namespace
}  // namespace bmp::trees
