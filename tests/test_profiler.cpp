// Profiler determinism tests — the acceptance surface of the performance
// attribution subsystem (obs/profiler.hpp):
//   * unit: phase aggregation is order-independent, null hooks are free,
//     wall time stays out of the deterministic exports;
//   * byte-identity: the full five-layer closed loop (the 500-node control
//     acceptance scenario) produces byte-identical to_json/to_collapsed/
//     summary_json across repeated runs AND across planner thread counts;
//   * parallel verify: the deterministic pool-parallel tier-2 sink sweep
//     (the VerifyOptions::auto_pool default) reports exactly the serial
//     sweep's throughput, solve count, BFS rounds, and profiler counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/flow/verify.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/obs/profiler.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/rng.hpp"
#include "bmp/util/thread_pool.hpp"

namespace bmp {
namespace {

// ----------------------------------------------------------------- units

TEST(Profiler, AggregationIsInsertionOrderIndependent) {
  obs::Profiler a;
  a.enter("plan/compute");
  a.count("plan/compute", "solves", 3);
  a.count("verify/tier2", "bfs_rounds", 7);
  a.enter("verify/tier2");
  a.count("plan/compute", "solves", 2);

  obs::Profiler b;  // same totals, different arrival order
  b.count("verify/tier2", "bfs_rounds", 7);
  b.count("plan/compute", "solves", 2);
  b.enter("verify/tier2");
  b.enter("plan/compute");
  b.count("plan/compute", "solves", 3);

  EXPECT_EQ(a.calls("plan/compute"), 1u);
  EXPECT_EQ(a.counter("plan/compute", "solves"), 5u);
  EXPECT_EQ(a.work("plan/compute"), 5u);   // counters, not calls
  EXPECT_EQ(a.work("verify/tier2"), 7u);
  EXPECT_EQ(a.total("solves"), 5u);
  EXPECT_EQ(a.total_work(), 12u);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_collapsed(), b.to_collapsed());
  EXPECT_EQ(a.summary_json(), b.summary_json());
}

TEST(Profiler, WorkFallsBackToCallsWithoutCounters) {
  obs::Profiler profiler;
  profiler.enter("runtime/step");
  profiler.enter("runtime/step");
  EXPECT_EQ(profiler.work("runtime/step"), 2u);
  EXPECT_EQ(profiler.total_work(), 2u);
}

TEST(Profiler, NullHooksAreSafeAndFree) {
  // The disabled-hook contract: every RAII helper must be a no-op with a
  // null profiler — this is the branch every call site pays by default.
  {
    const obs::PhaseScope scope(nullptr, "never/recorded");
    obs::ScopedCounter counter(nullptr, "never/recorded", "events");
    ++counter;
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
  }
  obs::Profiler profiler;
  EXPECT_TRUE(profiler.empty());
  EXPECT_EQ(profiler.phase_count(), 0u);
  EXPECT_EQ(profiler.total_work(), 0u);
}

TEST(Profiler, WallTimeNeverLeaksIntoDeterministicExports) {
  obs::Profiler walled(obs::ProfilerConfig{/*wall_time=*/true});
  ASSERT_TRUE(walled.wall_time());
  walled.add_wall("plan/compute", 123.5);
  walled.enter("plan/compute");
  EXPECT_GT(walled.wall_us("plan/compute"), 0.0);
  // to_json carries per-phase wall fields only for a wall-enabled
  // profiler (the header always states the wall_time config)...
  EXPECT_NE(walled.to_json().find("wall_us"), std::string::npos);
  // ...and the flat summary (what BENCH_*.json embeds and the perf gate
  // diffs exactly) never does.
  EXPECT_EQ(walled.summary_json().find("wall"), std::string::npos);

  obs::Profiler cold;  // default: wall time dropped at the hook
  cold.add_wall("plan/compute", 123.5);
  EXPECT_DOUBLE_EQ(cold.wall_us("plan/compute"), 0.0);
  EXPECT_EQ(cold.to_json().find("wall_us"), std::string::npos);
}

// --------------------------------------- closed-loop byte-identity proofs

/// The ISSUE 5 control-acceptance scenario: a brownout hits 10% of the
/// peers mid-stream and the adaptive loop re-plans around it. Exercises
/// every instrumented layer: planner, tiered verifier, session churn,
/// broker rebalance, dataplane scheduler, controller decide.
runtime::ScenarioScript adaptive_script(int peers, double horizon,
                                        std::uint64_t seed) {
  runtime::Scenario scenario(horizon, seed);
  scenario.source(4000.0)
      .population({peers * 3 / 5, 0.7, gen::Dist::kUnif100})
      .population({peers * 2 / 5, 0.3, gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, 1.0, /*fraction=*/0.5});
  runtime::BrownoutSpec brownout;
  brownout.time = 3.0;
  brownout.duration = -1.0;
  brownout.fraction = 0.10;
  brownout.capacity_factor = 0.25;
  scenario.brownout(brownout);
  return scenario.build();
}

/// Runs the adaptive closed loop with `profiler` attached to every layer
/// and returns after the horizon; the profiler holds the attribution.
void run_profiled_loop(const runtime::ScenarioScript& script,
                       std::size_t planner_threads, obs::Profiler* profiler) {
  runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.planner.threads = planner_threads;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = 4.0;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = true;
  config.profiler = profiler;
  runtime::Runtime rt(config, script.source_bandwidth, script.initial_peers);
  for (const runtime::Event& event : script.events) rt.step(event);
  EXPECT_TRUE(rt.validate().empty());
}

TEST(ProfilerDeterminism, ByteIdenticalAcrossRuns) {
  const runtime::ScenarioScript script = adaptive_script(500, 24.0, 2026);
  obs::Profiler first;
  obs::Profiler second;
  run_profiled_loop(script, 0, &first);
  run_profiled_loop(script, 0, &second);

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_EQ(first.to_collapsed(), second.to_collapsed());
  EXPECT_EQ(first.summary_json(), second.summary_json());

  // The attribution must actually span the layers, not just exist.
  for (const char* phase :
       {"runtime/step", "planner/compute", "runtime/session/build",
        "dataplane/advance", "dataplane/scheduler",
        "runtime/control/decide"}) {
    EXPECT_GT(first.work(phase), 0u) << phase;
  }
  EXPECT_GT(first.counter("dataplane/advance", "delivered"), 0u);
}

TEST(ProfilerDeterminism, ByteIdenticalAcrossPlannerThreadCounts) {
  // Worker threads only ever add commutative counter sums, so the report
  // cannot depend on how plan_batch work interleaved.
  const runtime::ScenarioScript script = adaptive_script(150, 14.0, 11);
  obs::Profiler one_thread;
  obs::Profiler four_threads;
  run_profiled_loop(script, 1, &one_thread);
  run_profiled_loop(script, 4, &four_threads);

  ASSERT_FALSE(one_thread.empty());
  EXPECT_EQ(one_thread.to_json(), four_threads.to_json());
  EXPECT_EQ(one_thread.to_collapsed(), four_threads.to_collapsed());
  EXPECT_EQ(one_thread.summary_json(), four_threads.summary_json());
}

// ------------------------------------ parallel tier-2 verify sweep parity

TEST(ParallelVerify, PoolSweepExactAndPoolSizeIndependent) {
  // A cyclic overlay over enough sinks to clear parallel_min_sinks, so the
  // chunked sweep actually engages.
  util::Xoshiro256 rng(7);
  std::vector<double> open_bw(400);
  for (auto& b : open_bw) b = rng.uniform(1.0, 10.0);
  const Instance open_only(rng.uniform(5.0, 10.0), std::move(open_bw), {});
  const double t_star = cyclic_open_optimal(open_only);
  const BroadcastScheme cyclic = build_cyclic_open(open_only, t_star);

  obs::Profiler serial_profile;
  flow::VerifyOptions serial_options;
  serial_options.auto_pool = false;
  serial_options.profiler = &serial_profile;
  flow::Verifier serial(serial_options);
  const flow::VerifyResult serial_result = serial.verify(cyclic);
  EXPECT_EQ(serial.stats().parallel_sweeps, 0u);
  EXPECT_EQ(serial_result.tier, flow::VerifyTier::kWarmMaxFlow);

  // Two explicit pools of different sizes: the chunked sweep must engage
  // on both (pool size > 1) and — because the chunk split is a fixed
  // option, never pool-derived — produce byte-identical attribution and
  // the exact serial throughput. Solve/BFS counts legitimately differ
  // from the *serial* sweep (per-chunk running minima tighten more slowly
  // than one global minimum), which is exactly why the invariant that
  // matters is pool-size-independence.
  util::ThreadPool two(2);
  util::ThreadPool four(4);
  obs::Profiler two_profile;
  obs::Profiler four_profile;
  flow::VerifyResult results[2];
  obs::Profiler* profiles[2] = {&two_profile, &four_profile};
  util::ThreadPool* pools[2] = {&two, &four};
  for (int i = 0; i < 2; ++i) {
    flow::VerifyOptions options;
    options.pool = pools[i];
    options.profiler = profiles[i];
    flow::Verifier verifier(options);
    results[i] = verifier.verify(cyclic);
    EXPECT_EQ(verifier.stats().parallel_sweeps, 1u);
  }

  EXPECT_EQ(results[0].throughput, serial_result.throughput);
  EXPECT_EQ(results[1].throughput, serial_result.throughput);
  EXPECT_EQ(results[0].maxflow_solves, results[1].maxflow_solves);
  EXPECT_EQ(results[0].bfs_rounds, results[1].bfs_rounds);
  EXPECT_EQ(two_profile.summary_json(), four_profile.summary_json());
  EXPECT_GT(two_profile.counter("verify/tier2_maxflow", "graph_copies"), 0u);
}

TEST(ParallelVerify, PoolSweepIsDeterministicAcrossRepeats) {
  util::Xoshiro256 rng(13);
  std::vector<double> open_bw(300);
  for (auto& b : open_bw) b = rng.uniform(1.0, 10.0);
  const Instance open_only(rng.uniform(5.0, 10.0), std::move(open_bw), {});
  const BroadcastScheme cyclic =
      build_cyclic_open(open_only, cyclic_open_optimal(open_only));

  std::string first_report;
  double first_throughput = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    obs::Profiler profile;
    flow::VerifyOptions options;
    options.profiler = &profile;
    flow::Verifier verifier(options);
    const flow::VerifyResult result = verifier.verify(cyclic);
    if (rep == 0) {
      first_report = profile.summary_json();
      first_throughput = result.throughput;
      continue;
    }
    EXPECT_EQ(profile.summary_json(), first_report);
    EXPECT_EQ(result.throughput, first_throughput);
  }
}

}  // namespace
}  // namespace bmp
