// Max-flow substrate tests: hand-checked graphs, reset semantics, and
// randomized cross-checks of scheme_throughput against flow conservation
// cuts.
#include <gtest/gtest.h>

#include <cmath>

#include "bmp/core/scheme.hpp"
#include "bmp/flow/maxflow.hpp"
#include "test_helpers.hpp"

namespace bmp::flow {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlowGraph g(2);
  g.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 1), 3.5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlowGraph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 2.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 3), 5.0);
}

TEST(MaxFlow, ClassicCLRSExample) {
  // CLRS figure 26.6 instance, max flow 23.
  MaxFlowGraph g(6);
  g.add_edge(0, 1, 16);
  g.add_edge(0, 2, 13);
  g.add_edge(1, 2, 10);
  g.add_edge(2, 1, 4);
  g.add_edge(1, 3, 12);
  g.add_edge(3, 2, 9);
  g.add_edge(2, 4, 14);
  g.add_edge(4, 3, 7);
  g.add_edge(3, 5, 20);
  g.add_edge(4, 5, 4);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 5), 23.0);
}

TEST(MaxFlow, ResetRestoresCapacities) {
  MaxFlowGraph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 0.0);  // residuals consumed
  g.reset();
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 2.0);
}

TEST(MaxFlow, FlowOnReportsPerEdgeFlow) {
  MaxFlowGraph g(3);
  const int e01 = g.add_edge(0, 1, 5.0);
  const int e12 = g.add_edge(1, 2, 2.0);
  g.max_flow(0, 2);
  EXPECT_DOUBLE_EQ(g.flow_on(e01), 2.0);
  EXPECT_DOUBLE_EQ(g.flow_on(e12), 2.0);
}

TEST(MaxFlow, RejectsBadInput) {
  MaxFlowGraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(MaxFlowGraph(0), std::invalid_argument);
}

TEST(MaxFlow, DisconnectedSinkIsZero) {
  MaxFlowGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 0.0);
}

TEST(MaxFlow, LimitOverloadClampsAndEarlyExits) {
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(2, 3, 2.0);
  // True max flow is 5; the limited call stops at the cap.
  EXPECT_DOUBLE_EQ(g.max_flow(0, 3, 2.5), 2.5);
  g.reset();
  // A limit above the max flow returns the exact value.
  EXPECT_DOUBLE_EQ(g.max_flow(0, 3, 100.0), 5.0);
}

TEST(MaxFlow, SetCapacityRetargetsAnExistingEdge) {
  MaxFlowGraph g(3);
  const int e01 = g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 2.0);
  g.set_capacity(e01, 1.0);  // now the first hop binds
  g.reset();
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 1.0);
  g.set_capacity(e01, 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 2.0);
  EXPECT_THROW(g.set_capacity(e01 + 1, 1.0), std::out_of_range);  // reverse id
  EXPECT_THROW(g.set_capacity(e01, -1.0), std::invalid_argument);
}

TEST(MaxFlow, AssignReusesTheSolverAcrossGraphs) {
  MaxFlowGraph g(2);
  g.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 1), 3.5);
  g.assign(3);  // drop edges, keep buffers
  EXPECT_EQ(g.num_edges(), 0);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 2.0);
}

TEST(MaxFlow, AddEdgeAfterSolveRebuildsTheIndex) {
  MaxFlowGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 0.0);
  g.add_edge(1, 2, 1.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.max_flow(0, 2), 1.0);
}

TEST(SchemeThroughput, OracleAgreesWithTieredPath) {
  BroadcastScheme s(4);
  s.add(0, 1, 3.0);
  s.add(1, 2, 2.0);
  s.add(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(scheme_throughput_oracle(s), scheme_throughput(s));
}

TEST(SchemeThroughput, StarScheme) {
  // Source splits b0=6 across 3 nodes: throughput = 2 each.
  BroadcastScheme s(4);
  s.add(0, 1, 2.0);
  s.add(0, 2, 2.0);
  s.add(0, 3, 2.0);
  EXPECT_DOUBLE_EQ(scheme_throughput(s), 2.0);
}

TEST(SchemeThroughput, ChainScheme) {
  BroadcastScheme s(4);
  s.add(0, 1, 3.0);
  s.add(1, 2, 2.0);
  s.add(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(scheme_throughput(s), 1.0);
  EXPECT_DOUBLE_EQ(scheme_max_flow_to(s, 1), 3.0);
  EXPECT_DOUBLE_EQ(scheme_max_flow_to(s, 2), 2.0);
}

TEST(SchemeThroughput, Fig1StyleOptimalSchemeAchievesClosedForm) {
  // A cyclic scheme of throughput 4.4 on the Fig. 1 instance (the closed
  // form min(6, 16/3, 22/5)): the instance is tight, so every node spends
  // its full upload and every node receives exactly 4.4.
  BroadcastScheme s(6);
  // source C0 (b=6)
  s.add(0, 3, 3.0);
  s.add(0, 4, 0.6);
  s.add(0, 5, 0.6);
  s.add(0, 1, 0.9);
  s.add(0, 2, 0.9);
  // open C1 (b=5)
  s.add(1, 3, 1.4);
  s.add(1, 4, 1.9);
  s.add(1, 5, 1.7);
  // open C2 (b=5)
  s.add(2, 4, 1.9);
  s.add(2, 5, 2.1);
  s.add(2, 1, 1.0);
  // guarded nodes feed open nodes only
  s.add(3, 1, 2.5);
  s.add(3, 2, 1.5);
  s.add(4, 2, 1.0);
  s.add(5, 2, 1.0);
  ASSERT_LE(s.max_inflow_deviation(4.4), 1e-9);
  ASSERT_TRUE(s.validate(testing::fig1_instance()).empty());
  EXPECT_FALSE(s.is_acyclic());
  EXPECT_NEAR(scheme_throughput(s), 4.4, 1e-9);
}

TEST(SchemeThroughput, UniformInflowDagEqualsT) {
  // For the DAG schemes our algorithms emit, inflow T at every node implies
  // throughput exactly T; fuzz this against random valid words.
  util::Xoshiro256 rng(515);
  for (int rep = 0; rep < 30; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const Instance inst = bmp::testing::random_instance(rng, n, 0);
    BroadcastScheme s(inst.size());
    // Simple forward waterfall at T = acyclic optimum.
    double T = inst.b(0);
    for (int k = 0; k < n; ++k) {
      T = std::min(T, inst.prefix_sum(k) / (k + 1));
    }
    int sender = 0;
    double left = inst.b(0);
    for (int r = 1; r <= n; ++r) {
      double need = T;
      while (need > 1e-12) {
        if (left <= 1e-12) {
          ++sender;
          left = inst.b(sender);
          continue;
        }
        const double take = std::min(left, need);
        if (sender != r) s.add(sender, r, take);
        left -= take;
        need -= take;
      }
    }
    EXPECT_NEAR(scheme_throughput(s), T, 1e-6);
  }
}

}  // namespace
}  // namespace bmp::flow
