// Robustness / differential fuzz suite: extreme bandwidth scales, hostile
// inputs (NaN/inf), degenerate shapes, and cross-implementation agreement
// between the three ways of computing a word's throughput (closed form,
// bisection, LP) and the two ways of computing the acyclic optimum
// (GreedyTest search vs. brute-force enumeration).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bmp/core/acyclic_open.hpp"
#include "bmp/core/acyclic_search.hpp"
#include "bmp/core/bounds.hpp"
#include "bmp/core/cyclic_open.hpp"
#include "bmp/core/exact.hpp"
#include "bmp/core/word_schedule.hpp"
#include "bmp/core/word_throughput.hpp"
#include "bmp/flow/maxflow.hpp"
#include "test_helpers.hpp"

namespace bmp {
namespace {

TEST(Fuzz, RejectsHostileBandwidths) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Instance(nan, {}, {}), std::invalid_argument);
  EXPECT_THROW(Instance(1.0, {inf}, {}), std::invalid_argument);
  EXPECT_THROW(Instance(1.0, {}, {nan}), std::invalid_argument);
  EXPECT_THROW(Instance(-inf, {}, {}), std::invalid_argument);
}

TEST(Fuzz, ZeroBandwidthNodesAreHandled) {
  // Nodes with zero upload are pure sinks; the machinery must not divide
  // by zero or loop.
  const Instance inst(4.0, {2.0, 0.0, 0.0}, {0.0});
  const double t = optimal_acyclic_throughput(inst);
  EXPECT_GT(t, 0.0);
  const AcyclicSolution sol = solve_acyclic(inst);
  EXPECT_TRUE(sol.scheme.validate(inst).empty());
  EXPECT_LE(sol.scheme.max_inflow_deviation(sol.throughput), 1e-6);
}

TEST(Fuzz, AllZeroPlatform) {
  const Instance inst(0.0, {0.0, 0.0}, {0.0});
  EXPECT_DOUBLE_EQ(cyclic_upper_bound(inst), 0.0);
  EXPECT_DOUBLE_EQ(optimal_acyclic_throughput(inst), 0.0);
}

TEST(Fuzz, ExtremeScalesStayConsistent) {
  // The same instance at scale 1e-9, 1, 1e+9: throughputs must scale
  // linearly and schemes stay valid (all tolerances are relative).
  util::Xoshiro256 rng(0xF122);
  for (int rep = 0; rep < 20; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = static_cast<int>(rng.below(6));
    const Instance base = testing::random_instance(rng, n, m, 0.5, 5.0);
    const double t_base = optimal_acyclic_throughput(base);
    for (const double scale : {1e-9, 1e9}) {
      std::vector<double> open;
      std::vector<double> guarded;
      for (int i = 1; i <= n; ++i) open.push_back(base.b(i) * scale);
      for (int i = n + 1; i < base.size(); ++i) guarded.push_back(base.b(i) * scale);
      const Instance scaled(base.b(0) * scale, open, guarded);
      const double t_scaled = optimal_acyclic_throughput(scaled);
      EXPECT_NEAR(t_scaled, t_base * scale, 1e-6 * t_base * scale)
          << "scale " << scale;
      const AcyclicSolution sol = solve_acyclic(scaled);
      EXPECT_TRUE(sol.scheme.validate(scaled).empty());
    }
  }
}

TEST(Fuzz, HugeHeterogeneityRatios) {
  // 1e6:1 bandwidth spread — the regime the paper motivates (§II.A).
  const Instance inst(1e6, {1e6, 10.0, 1.0, 0.01}, {1e5, 0.1});
  const AcyclicSolution sol = solve_acyclic(inst);
  EXPECT_TRUE(sol.scheme.validate(inst).empty());
  EXPECT_NEAR(flow::scheme_throughput(sol.scheme), sol.throughput,
              1e-5 * sol.throughput);
  EXPECT_GE(sol.throughput, 5.0 / 7.0 * cyclic_upper_bound(inst) - 1e-3);
}

TEST(Fuzz, ManyEqualBandwidths) {
  // Ties everywhere: sorting, greedy comparisons and the scheduler must be
  // deterministic and valid.
  const Instance inst(3.0, std::vector<double>(25, 3.0),
                      std::vector<double>(25, 3.0));
  const AcyclicSolution sol = solve_acyclic(inst);
  EXPECT_TRUE(sol.scheme.validate(inst).empty());
  const AcyclicSolution again = solve_acyclic(inst);
  EXPECT_EQ(to_string(sol.word), to_string(again.word));
  EXPECT_DOUBLE_EQ(sol.throughput, again.throughput);
}

TEST(Fuzz, DifferentialWordThroughputThreeWays) {
  util::Xoshiro256 rng(0xF123);
  for (int rep = 0; rep < 150; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(5));
    const int m = static_cast<int>(rng.below(5));
    const Instance inst = testing::random_instance(rng, n, m, 0.1, 40.0);
    const auto words = enumerate_words(n, m);
    const Word& w = words[rng.below(words.size())];
    const double closed = word_throughput_closed_form(inst, w);
    const double bisect = word_throughput(inst, w);
    EXPECT_NEAR(closed, bisect, 1e-6 * std::max(1.0, closed)) << to_string(w);
  }
}

TEST(Fuzz, DifferentialAcyclicOptimumTwoWays) {
  util::Xoshiro256 rng(0xF124);
  for (int rep = 0; rep < 100; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(4));
    const int m = static_cast<int>(rng.below(5));
    const Instance inst = testing::random_instance(rng, n, m, 0.1, 40.0);
    const double greedy = optimal_acyclic_throughput(inst);
    const double brute = optimal_acyclic_bruteforce(inst);
    EXPECT_NEAR(greedy, brute, 1e-6 * std::max(1.0, brute))
        << "n=" << n << " m=" << m;
  }
}

TEST(Fuzz, SchemeBuilderAgreesWithStateMachine) {
  // Pool totals in the scheduler must track the O/G/W recursions exactly.
  util::Xoshiro256 rng(0xF125);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const int m = static_cast<int>(rng.below(6));
    const Instance inst = testing::random_instance(rng, n, m);
    const double T = optimal_acyclic_throughput(inst) * 0.9;
    const auto word = greedy_test(inst, T);
    if (!word || T <= 1e-9) continue;
    const WordSchedule ws = build_scheme_from_word(inst, *word, T, true);
    auto st = PrefixState<double>::initial(inst);
    ASSERT_EQ(ws.trace.size(), word->size() + 1);
    for (std::size_t k = 0; k < word->size(); ++k) {
      st.append((*word)[k], inst, T);
      EXPECT_NEAR(ws.trace[k + 1].open_avail, st.open_avail, 1e-6);
      EXPECT_NEAR(ws.trace[k + 1].guarded_avail, st.guarded_avail, 1e-6);
      EXPECT_NEAR(ws.trace[k + 1].open_open, st.open_open, 1e-6);
    }
  }
}

TEST(Fuzz, CyclicBuilderSurvivesNearBoundaryRates) {
  util::Xoshiro256 rng(0xF126);
  for (int rep = 0; rep < 60; ++rep) {
    const int n = 1 + static_cast<int>(rng.below(15));
    const Instance inst = testing::random_instance(rng, n, 0, 0.01, 10.0);
    const double t_max = cyclic_open_optimal(inst);
    for (const double f : {0.999999, 1.0 - 1e-12, 1.0}) {
      const double T = t_max * f;
      if (T <= 1e-9) continue;
      const BroadcastScheme s = build_cyclic_open(inst, T);
      EXPECT_TRUE(s.validate(inst).empty());
      EXPECT_LE(s.max_inflow_deviation(T), 1e-6 * std::max(1.0, T));
    }
  }
}

TEST(Fuzz, SingleNodePlatforms) {
  const Instance only_source(5.0, {}, {});
  EXPECT_DOUBLE_EQ(optimal_acyclic_throughput(only_source), 5.0);
  const Instance one_open(5.0, {1.0}, {});
  EXPECT_DOUBLE_EQ(optimal_acyclic_throughput(one_open), 5.0);
  const Instance one_guarded(5.0, {}, {1.0});
  EXPECT_DOUBLE_EQ(optimal_acyclic_throughput(one_guarded), 5.0);
  const AcyclicSolution sol = solve_acyclic(one_guarded);
  EXPECT_DOUBLE_EQ(sol.scheme.rate(0, 1), 5.0);
}

}  // namespace
}  // namespace bmp
