// `bmp_plan` — standalone overlay planner CLI (the downstream-user entry
// point). Reads a platform file, plans the optimal low-degree acyclic
// broadcast overlay (or the cyclic one for open-only platforms), prints a
// report and emits the scheme / Graphviz dot.
//
//   usage: bmp_plan <platform-file> [--cyclic] [--rate R] [--dot] [--edges]
//   platform file format:
//       source  25.0
//       open    10.0  worker-a
//       guarded  2.5  laptop-b
//
// Run without arguments for a demo on a built-in platform.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bmp/bmp.hpp"
#include "bmp/core/depth.hpp"
#include "bmp/net/instance_io.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

constexpr const char* kDemoPlatform = R"(# demo platform
source 24
open 20 relay-a
open 12 relay-b
guarded 16 office-nat
guarded 6 home-1
guarded 4 home-2
guarded 2 mobile
)";

int run(const bmp::net::PlatformFile& platform, bool cyclic, double rate,
        bool dot, bool edges) {
  using bmp::util::Table;
  const bmp::Instance& inst = platform.instance;
  const double t_star = bmp::cyclic_upper_bound(inst);

  bmp::BroadcastScheme scheme(inst.size());
  double T = 0.0;
  std::string algorithm;
  if (cyclic) {
    if (inst.m() != 0) {
      std::cerr << "--cyclic requires an open-only platform (the optimal "
                   "cyclic+guarded problem needs unbounded degrees; see "
                   "DESIGN.md / Fig. 6)\n";
      return 2;
    }
    T = rate > 0.0 ? rate : bmp::cyclic_open_optimal(inst);
    scheme = bmp::build_cyclic_open(inst, T);
    algorithm = "cyclic (Theorem 5.2)";
  } else {
    const bmp::AcyclicSolution sol = bmp::solve_acyclic(inst);
    if (rate > 0.0 && rate < sol.throughput) {
      const auto word = bmp::greedy_test(inst, rate);
      if (!word) {
        std::cerr << "requested rate " << rate << " is infeasible\n";
        return 2;
      }
      T = rate;
      scheme = bmp::build_scheme_from_word(inst, *word, T).scheme;
    } else {
      T = sol.throughput;
      scheme = sol.scheme;
    }
    algorithm = "acyclic (Theorem 4.1)";
  }

  Table report({"quantity", "value"});
  report.add_row({"algorithm", algorithm});
  report.add_row({"nodes", Table::num(inst.size()) + " (" +
                               Table::num(inst.n()) + " open, " +
                               Table::num(inst.m()) + " guarded)"});
  report.add_row({"throughput T", Table::num(T, 4)});
  report.add_row({"cyclic bound T*", Table::num(t_star, 4)});
  report.add_row({"efficiency", Table::num(100.0 * T / t_star, 1) + "%"});
  report.add_row({"connections", Table::num(scheme.edge_count())});
  report.add_row({"max outdegree", Table::num(scheme.max_out_degree())});
  if (scheme.is_acyclic()) {
    const bmp::DepthReport depth = bmp::analyze_depth(scheme);
    report.add_row({"max depth", Table::num(depth.max_depth)});
    report.add_row({"mean weighted depth", Table::num(depth.max_weighted_depth, 2)});
  }
  report.add_row({"verified (max-flow)",
                  Table::num(bmp::flow::scheme_throughput(scheme), 4)});
  report.print(std::cout);

  if (edges) {
    std::cout << "\n# scheme edges (from to rate)\n"
              << bmp::net::serialize_scheme(scheme);
  }
  if (dot) std::cout << "\n" << scheme.to_dot();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  bool cyclic = false;
  bool dot = false;
  bool edges = false;
  double rate = 0.0;
  std::string path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--cyclic") {
      cyclic = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--edges") {
      edges = true;
    } else if (arg == "--rate" && a + 1 < argc) {
      rate = std::stod(argv[++a]);
    } else if (arg == "--quick" || arg == "--profile-wall") {
      // observability flags, already consumed by CommonCli
    } else if (arg == "--json" || arg == "--trace" || arg == "--profile" ||
               arg == "--metrics") {
      ++a;  // flag + value pair, consumed by CommonCli
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bmp_plan <platform-file> [--cyclic] [--rate R] "
                   "[--dot] [--edges] [--json P] [--profile P]\n";
      return 0;
    } else {
      path = arg;
    }
  }

  try {
    int rc = 0;
    {
      const bmp::obs::PhaseScope plan_scope(cli.profiler(), "example/bmp_plan");
      if (path.empty()) {
        std::cout << "(no platform file given; planning the built-in demo)\n\n";
        rc = run(bmp::net::parse_platform_string(kDemoPlatform), cyclic, rate,
                 dot, /*edges=*/true);
      } else {
        std::ifstream in(path);
        if (!in) {
          std::cerr << "cannot open " << path << "\n";
          return 2;
        }
        rc = run(bmp::net::parse_platform(in), cyclic, rate, dot, edges);
      }
    }
    if (!cli.json.empty() || !cli.profile.empty()) {
      bmp::benchutil::finish(cli, "bmp_plan", rc == 0);
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
