// Adaptive live streaming over a lossy WAN — the five-layer loop end to
// end (plan -> verify -> host -> execute -> adapt):
//
//   * two peer regions share one live channel: a metro region on clean
//     links and a WAN region behind 2% loss / 30 ms jittery paths;
//   * mid-stream, a flash brownout halves the WAN region's effective
//     upload capacity. The planner is not told — planned rates stay
//     nominal, the wire silently delivers less, and the stream's worst
//     nodes start falling behind;
//   * the control plane sees it in the achieved-rate telemetry: egress and
//     straggler detectors trip, the browned-out uploaders are demoted to
//     their telemetry-estimated capacity class, the overlay is repaired
//     (or re-planned) around them — every adapted scheme flow-verified —
//     and the running chunk stream is live-patched, never restarted;
//   * when the brownout lifts, staged restore probes climb the region
//     back toward nominal capacity.
//
// The same scenario replayed with the controller off shows what the
// adaptation buys: during the brownout the frozen plan's worst node falls
// far below the post-brownout optimum, the adaptive one stays near it.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/lineage.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

constexpr double kHorizon = 14.0;
constexpr double kBrownoutStart = 4.0;
constexpr double kBrownoutEnd = 9.0;
constexpr double kFactor = 0.5;       // the brownout halves the region
constexpr double kFraction = 0.5;     // channel's capacity share
constexpr double kChunk = 0.8;

bmp::runtime::ScenarioScript build_script() {
  using namespace bmp::runtime;
  Scenario scenario(kHorizon, /*seed=*/42);
  NodeClassSpec metro{90, 0.7, bmp::gen::Dist::kUnif100};
  NodeClassSpec wan{60, 0.4, bmp::gen::Dist::kLogNormal1};
  wan.wan = true;
  wan.profile = {/*loss_rate=*/0.02, /*latency=*/0.03, /*rate_jitter=*/0.05};
  scenario.source(2000.0)
      .population(metro)
      .population(wan)
      .channel({0.0, -1.0, /*weight=*/1.0, kFraction});
  // The flash brownout: the whole WAN region ("region 1") loses half its
  // effective upload capacity for t in [4, 9).
  BrownoutSpec brownout;
  brownout.time = kBrownoutStart;
  brownout.duration = kBrownoutEnd - kBrownoutStart;
  brownout.fraction = 1.0;
  brownout.capacity_factor = kFactor;
  brownout.population_class = 1;
  scenario.brownout(brownout);
  return scenario.build();
}

/// Worst per-node delivered rate over a probe window, judged by stepping
/// the runtime through the script with clock markers (empty join events)
/// at the window edges and reading the execution's chunk counters.
struct Run {
  double worst_rate_brownout = 0.0;  ///< worst node, t in [6, 8.9]
  double worst_rate_recovered = 0.0; ///< worst node, t in [12, 14]
  int demotions = 0, restores = 0, repairs = 0, replans = 0;
  std::vector<bmp::runtime::ControlReport> log;
};

Run run(const bmp::runtime::ScenarioScript& script, bool adaptive,
        bmp::obs::TraceSink* trace = nullptr,
        bmp::obs::Profiler* profiler = nullptr,
        std::string* prometheus = nullptr,
        bmp::obs::LineageSink* lineage = nullptr) {
  bmp::runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = kChunk;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = adaptive;
  config.trace = trace;
  config.profiler = profiler;
  config.lineage = lineage;

  bmp::runtime::Runtime runtime(config, script.source_bandwidth,
                                script.initial_peers);
  const auto advance_to = [&](double t) {
    bmp::runtime::Event marker;
    marker.type = bmp::runtime::EventType::kNodeJoin;  // empty: clock only
    marker.time = t;
    runtime.step(marker);
  };
  const auto snapshot = [&] {
    const bmp::dataplane::Execution* exec = runtime.execution(0);
    std::vector<int> delivered;
    for (int dp = 1; dp < exec->num_nodes(); ++dp) {
      delivered.push_back(exec->delivered(dp));
    }
    return delivered;
  };
  const auto worst_rate = [&](const std::vector<int>& before,
                              const std::vector<int>& after, double dt) {
    double worst = 1e300;
    for (std::size_t k = 0; k < before.size(); ++k) {
      worst = std::min(worst, (after[k] - before[k]) * kChunk / dt);
    }
    return worst;
  };

  std::size_t next = 0;
  const auto run_until = [&](double t) {
    while (next < script.events.size() && script.events[next].time <= t) {
      runtime.step(script.events[next++]);
    }
    advance_to(t);
  };

  Run result;
  run_until(6.0);
  const std::vector<int> probe_a = snapshot();
  run_until(8.9);
  result.worst_rate_brownout = worst_rate(probe_a, snapshot(), 2.9);
  run_until(12.0);
  const std::vector<int> probe_b = snapshot();
  run_until(kHorizon);
  result.worst_rate_recovered = worst_rate(probe_b, snapshot(), 2.0);
  runtime.drain(kHorizon);

  result.demotions =
      static_cast<int>(runtime.metrics().counter("control.demotions"));
  result.restores =
      static_cast<int>(runtime.metrics().counter("control.restores"));
  result.repairs =
      static_cast<int>(runtime.metrics().counter("control.repairs"));
  result.replans =
      static_cast<int>(runtime.metrics().counter("control.replans"));
  result.log = runtime.control_log();
  if (prometheus != nullptr) {
    *prometheus = bmp::obs::to_prometheus(runtime.metrics().snapshot());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Shared observability CLI (benchutil::CommonCli):
  //   --trace <path>    the adaptive run's cross-layer timeline (plan /
  //                     verify / repair / broker / chunk stream / control
  //                     decisions) as Chrome trace-event JSON — load it in
  //                     Perfetto or chrome://tracing;
  //   --profile <path>  deterministic work attribution of the same run
  //                     (JSON + flamegraph-ready .collapsed + top-N table);
  //   --metrics <path>  the final metrics snapshot, Prometheus exposition;
  //   --lineage <path>  per-chunk delivery lineage of the adaptive run as
  //                     JSON, plus the critical-path blame table beside it
  //                     ("<path>.blame.json") and on the trace's lineage
  //                     lane.
  bmp::benchutil::CommonCli cli(argc, argv);
  const std::string& trace_path = cli.trace;
  const bmp::runtime::ScenarioScript script = build_script();

  // The reference: the best any planner could do *during* the brownout —
  // the optimum of the effective platform (browned caps, channel share).
  std::vector<int> browned;
  for (const bmp::runtime::Event& event : script.events) {
    if (event.type != bmp::runtime::EventType::kDegrade) continue;
    for (const bmp::runtime::Degradation& d : event.degrades) {
      if (d.set_factor && d.capacity_factor < 1.0) browned.push_back(d.node);
    }
    break;  // the first degrade event is the brownout start
  }
  std::vector<char> is_browned(script.initial_peers.size() + 1, 0);
  for (const int id : browned) is_browned[static_cast<std::size_t>(id)] = 1;
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    const bmp::runtime::NodeSpec& peer = script.initial_peers[k];
    const double eff =
        peer.bandwidth * kFraction * (is_browned[k + 1] ? kFactor : 1.0);
    (peer.guarded ? guarded_bw : open_bw).push_back(eff);
  }
  const bmp::Instance effective(script.source_bandwidth * kFraction,
                                std::move(open_bw), std::move(guarded_bw));
  const double optimum =
      bmp::engine::Planner::plan_uncached(effective,
                                          bmp::engine::Algorithm::kAcyclic, 0)
          .throughput;

  std::cout << "live stream over a lossy WAN: " << script.initial_peers.size()
            << " peers in 2 regions; a brownout halves region 1's ("
            << browned.size() << " peers) upload capacity for t in [4, 9)\n"
            << "post-brownout optimum rate: " << optimum << "\n\n";

  bmp::obs::TraceSink trace;
  std::string prometheus;
  bmp::obs::LineageSink lineage;
  const Run adaptive =
      run(script, true, trace_path.empty() ? nullptr : &trace, cli.profiler(),
          cli.metrics.empty() ? nullptr : &prometheus,
          cli.lineage.empty() ? nullptr : &lineage);
  const Run frozen = run(script, false);

  // Tail-latency attribution: walk the delivery DAG back from the
  // last-completing node and decompose its completion time into per-edge
  // blame. The trace gains the path as instants on the lineage lane, so
  // it must land before the trace file is written.
  bool lineage_ok = true;
  if (!cli.lineage.empty()) {
    const bmp::obs::BlameTable blame =
        bmp::obs::analyze_critical_path(lineage.hops());
    bmp::obs::emit_blame_trace(blame, trace_path.empty() ? nullptr : &trace);
    lineage_ok = lineage.write(cli.lineage);
    const std::string blame_path = cli.lineage + ".blame.json";
    {
      std::ofstream out(blame_path);
      out << blame.to_json() << "\n";
      lineage_ok = static_cast<bool>(out) && lineage_ok;
    }
    const bool attributed =
        blame.valid && !blame.path.empty() &&
        std::fabs(blame.attributed_total - blame.completion_time) <= 1e-6;
    lineage_ok = attributed && lineage_ok;
    std::cout << "lineage: " << lineage.recorded() << " hops ("
              << lineage.dropped() << " dropped) -> " << cli.lineage
              << ", blame table -> " << blame_path << "\n";
    std::cout << blame.to_text();
    std::cout << (attributed ? "[OK] " : "[WARN] ")
              << "blame segments sum to the last node's completion time "
                 "(attributed "
              << blame.attributed_total << " vs completion "
              << blame.completion_time << ", tolerance 1e-6)\n\n";
  }
  if (!trace_path.empty()) {
    std::cout << (trace.write(trace_path) ? "trace written to "
                                          : "[WARN] could not write ")
              << trace_path << " (" << trace.events() << " events, "
              << trace.spans() << " spans)\n\n";
  }

  std::cout << "controller actions (channel 0):\n";
  for (const bmp::runtime::ControlReport& entry : adaptive.log) {
    std::cout << "  t=" << entry.time << "  demote " << entry.demotions
              << ", restore " << entry.restores << ", reroute "
              << entry.reroutes << ", stragglers " << entry.stragglers
              << (entry.full_replan ? "  [full re-plan]" : "  [patched]")
              << "  verified rate " << entry.rate_before << " -> "
              << entry.rate_after << "\n";
    // The causal audit: which detector judged what, and the move it drove.
    for (const bmp::control::Evidence& ev : entry.evidence) {
      std::cout << "      " << ev.action << " (" << ev.detector << ")";
      if (ev.node >= 0) std::cout << " node " << ev.node;
      if (ev.from >= 0) std::cout << " edge " << ev.from << "->" << ev.to;
      if (std::strcmp(ev.action, "replan") == 0) {
        std::cout << ": drift " << ev.drift << " > " << ev.threshold;
      } else {
        std::cout << ": ewma " << ev.ewma << " vs threshold " << ev.threshold
                  << ", factor " << ev.factor_before << " -> "
                  << ev.factor_after;
      }
      std::cout << "\n";
    }
  }

  bmp::util::Table table({"runtime", "worst node (brownout)",
                          "vs optimum", "worst node (recovered)",
                          "demote/restore", "repair/replan"});
  const auto row = [&](const char* name, const Run& r) {
    table.add_row({name, bmp::util::Table::num(r.worst_rate_brownout, 2),
                   bmp::util::Table::num(r.worst_rate_brownout / optimum, 3),
                   bmp::util::Table::num(r.worst_rate_recovered, 2),
                   bmp::util::Table::num(r.demotions) + "/" +
                       bmp::util::Table::num(r.restores),
                   bmp::util::Table::num(r.repairs) + "/" +
                       bmp::util::Table::num(r.replans)});
  };
  std::cout << "\n";
  row("adaptive", adaptive);
  row("frozen plan", frozen);
  table.print(std::cout);

  std::cout << "\nduring the brownout the adaptive stream's worst node held "
            << 100.0 * adaptive.worst_rate_brownout / optimum
            << "% of the post-brownout optimum (frozen plan: "
            << 100.0 * frozen.worst_rate_brownout / optimum
            << "%) — live patches only, the stream never restarted\n";
  bool ok = adaptive.worst_rate_brownout > frozen.worst_rate_brownout;
  ok = ok && lineage_ok;
  if (!cli.metrics.empty()) {
    std::ofstream out(cli.metrics);
    out << prometheus;
    ok = static_cast<bool>(out) && ok;
  }
  ok = cli.write_profile() && ok;
  return ok ? 0 : 1;
}
