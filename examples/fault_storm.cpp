// Chaos smoke: a seeded fault storm against the full five-layer loop.
//
// A 160-peer live channel is hit, mid-stream, by every fault kind the
// injector knows (src/fault/):
//
//   * three abrupt crashes — no leave event; the runtime must notice the
//     telemetry silence, synthesize the departure, reclaim the broker
//     grants and repair the overlay around the holes;
//   * a network partition cutting off an eight-node island, healed three
//     and a half scenario-hours later — traffic across the cut drops on
//     the wire while counters keep moving, so it must NOT read as a crash;
//   * payload corruption on one relay's egress — hardened receivers
//     (checksum verify, the runtime default) detect, drop and re-request;
//   * a telemetry blackout over three nodes — the control plane sees
//     frozen samples and must not demote on "no data";
//   * a planner outage window — plan() throws, sessions fall back to the
//     best verified incremental repair, the runtime retries with backoff.
//
// The same storm replayed with every defense off (no checksums, no crash
// detection, controller frozen) shows what the tolerance machinery buys:
// corrupted payloads propagate downstream and the worst survivor starves.
//
// Exit code is the smoke verdict: 0 only if, in the hardened run, every
// survivor keeps progressing after the heal, validate() stays clean, and
// no corrupted chunk was ever silently accepted.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bmp/engine/planner.hpp"
#include "bmp/fault/fault.hpp"
#include "bmp/fault/injector.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/obs/flight_recorder.hpp"
#include "bmp/obs/slo.hpp"
#include "bmp/obs/trace.hpp"
#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

namespace {

constexpr int kPeers = 160;
constexpr double kHorizon = 14.0;
constexpr double kFraction = 0.5;  // channel's capacity share
constexpr double kHealTime = 8.0;

bmp::runtime::ScenarioScript build_storm() {
  using namespace bmp::runtime;
  Scenario scenario(kHorizon, /*seed=*/7);
  scenario.source(3000.0)
      .population({kPeers * 3 / 5, 0.7, bmp::gen::Dist::kUnif100})
      .population({kPeers * 2 / 5, 0.3, bmp::gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, /*weight=*/1.0, kFraction});
  ScenarioScript script = scenario.build();

  bmp::fault::FaultPlan plan;
  plan.crashes.push_back({3.5, 7});
  plan.crashes.push_back({4.0, 23});
  plan.crashes.push_back({6.5, 41});
  bmp::fault::PartitionSpec partition;
  partition.time = 4.5;
  partition.heal_time = kHealTime;
  for (int id = 60; id < 68; ++id) partition.group_b.push_back(id);
  plan.partitions.push_back(partition);
  plan.corruptions.push_back({3.0, 7.0, /*node=*/12, /*rate=*/0.3});
  bmp::fault::BlackoutSpec blackout;
  blackout.time = 5.0;
  blackout.end_time = 7.5;
  blackout.nodes = {30, 31, 32};
  plan.blackouts.push_back(blackout);
  plan.planner_outages.push_back({4.0, 6.0});
  bmp::fault::Injector::inject(script, plan);
  return script;
}

struct Run {
  double worst_rate = 0.0;     ///< worst survivor, post-heal window
  int stalled = 0;             ///< survivors with zero post-heal progress
  std::uint64_t corrupt_dropped = 0;   ///< checksum catches (re-requested)
  std::uint64_t corrupt_accepted = 0;  ///< silent acceptances (propagation)
  std::uint64_t crashes_detected = 0;
  std::uint64_t opens_deferred = 0;
  std::uint64_t stale_windows = 0;     ///< controller windows skipped dark
  std::vector<std::string> violations;
  std::uint64_t slo_pages = 0;
  std::uint64_t slo_warns = 0;
  bool slo_paged_in_storm = false;  ///< a page alert inside the fault window
  bool slo_ok_at_end = false;       ///< state recovered to ok after the heal
  std::string prometheus;           ///< final snapshot (--metrics)
};

Run run(const bmp::runtime::ScenarioScript& script, bool hardened,
        double chunk, bmp::obs::TraceSink* trace,
        bmp::obs::FlightRecorder* recorder, bmp::obs::Profiler* profiler) {
  bmp::runtime::RuntimeConfig config;
  config.collect_timing = false;
  config.broker_headroom = 0.05;
  config.dataplane.execute = true;
  config.dataplane.execution.chunk_size = chunk;
  config.dataplane.execution.receiver_window = 16;
  config.control.enabled = hardened;
  config.control.slo_enabled = hardened;
  if (!hardened) {
    config.dataplane.execution.verify_payloads = false;
    config.fault.detect_crashes = false;
  }
  config.trace = trace;
  config.recorder = recorder;
  config.profiler = profiler;

  bmp::runtime::Runtime rt(config, script.source_bandwidth,
                           script.initial_peers);
  std::size_t next = 0;
  const auto run_until = [&](double t) {
    while (next < script.events.size() && script.events[next].time <= t) {
      rt.step(script.events[next++]);
    }
    bmp::runtime::Event marker;
    marker.type = bmp::runtime::EventType::kNodeJoin;  // empty: clock only
    marker.time = t;
    rt.step(marker);
  };
  const auto snapshot = [&] {
    const bmp::dataplane::Execution* exec = rt.execution(0);
    std::vector<int> delivered(static_cast<std::size_t>(exec->num_nodes()),
                               -1);
    for (int dp = 1; dp < exec->num_nodes(); ++dp) {
      if (exec->node_alive(dp)) {
        delivered[static_cast<std::size_t>(dp)] = exec->delivered(dp);
      }
    }
    return delivered;
  };

  // Probe the post-heal window: by t=10 every fault has landed and the
  // partition healed; survivors must all be moving again.
  run_until(10.0);
  const std::vector<int> before = snapshot();
  run_until(kHorizon);
  const std::vector<int> after = snapshot();

  Run result;
  result.worst_rate = 1e300;
  for (std::size_t k = 1; k < after.size(); ++k) {
    if (after[k] < 0 || before[k] < 0) continue;  // crashed: not a survivor
    const double rate = (after[k] - before[k]) * chunk / (kHorizon - 10.0);
    if (after[k] == before[k]) ++result.stalled;
    result.worst_rate = std::min(result.worst_rate, rate);
  }
  const bmp::dataplane::Execution* exec = rt.execution(0);
  result.corrupt_dropped = exec->corruptions();
  result.corrupt_accepted = exec->corrupted_accepted();
  result.crashes_detected = rt.metrics().counter("fault.crashes_detected");
  result.opens_deferred = rt.metrics().counter("fault.opens_deferred");
  result.stale_windows = rt.metrics().counter("control.stale_nodes");
  result.violations = rt.validate();
  // The SLO verdict: the monitor must have paged while the faults were
  // live (first crash at 3.5 through the heal) and be back to ok now.
  if (const bmp::obs::SloMonitor* slo = rt.slo_monitor(0)) {
    result.slo_pages = slo->pages();
    result.slo_warns = slo->warns();
    result.slo_ok_at_end = slo->state() == bmp::obs::SloState::kOk;
    for (const bmp::obs::SloAlert& alert : slo->alerts()) {
      if (alert.to == bmp::obs::SloState::kPage && alert.time >= 3.5 &&
          alert.time <= kHealTime + 2.0) {
        result.slo_paged_in_storm = true;
      }
    }
  }
  result.prometheus = bmp::obs::to_prometheus(rt.metrics().snapshot());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Shared observability CLI (benchutil::CommonCli): --trace/--profile/
  // --metrics as everywhere else (--metrics includes the slo.* series and
  // per-channel slo.state gauge), plus --dump <path> to write the flight
  // recorder's post-storm state (CI archives the artifacts).
  bmp::benchutil::CommonCli cli(argc, argv);
  const std::string dump_path = bmp::benchutil::arg_value(argc, argv, "--dump");

  const bmp::runtime::ScenarioScript script = build_storm();

  // Reference rate: the optimum of the platform as the storm leaves it —
  // the surviving population on its nominal capacity, channel share applied.
  std::vector<char> crashed(script.initial_peers.size() + 1, 0);
  for (const bmp::runtime::Event& event : script.events) {
    if (event.type != bmp::runtime::EventType::kFault) continue;
    for (const bmp::runtime::FaultAction& fault : event.faults) {
      if (fault.kind == bmp::runtime::FaultAction::Kind::kCrash) {
        crashed[static_cast<std::size_t>(fault.node)] = 1;
      }
    }
  }
  std::vector<double> open_bw;
  std::vector<double> guarded_bw;
  for (std::size_t k = 0; k < script.initial_peers.size(); ++k) {
    if (crashed[k + 1]) continue;
    const bmp::runtime::NodeSpec& peer = script.initial_peers[k];
    (peer.guarded ? guarded_bw : open_bw)
        .push_back(peer.bandwidth * kFraction);
  }
  const bmp::Instance survivors(script.source_bandwidth * kFraction,
                                std::move(open_bw), std::move(guarded_bw));
  const double optimum =
      bmp::engine::Planner::plan_uncached(survivors,
                                          bmp::engine::Algorithm::kAcyclic, 0)
          .throughput;
  const double chunk = optimum / 40.0;

  std::cout << "fault storm: " << script.initial_peers.size()
            << " peers; 3 crashes, an 8-node partition healing at t="
            << kHealTime << ", 30% egress corruption on node 12, a 3-node "
            << "telemetry blackout, a planner outage in [4, 6)\n"
            << "post-storm survivor optimum: " << optimum << "\n\n";

  bmp::obs::TraceSink trace;
  bmp::obs::FlightRecorder recorder;
  const Run hardened =
      run(script, true, chunk, cli.trace.empty() ? nullptr : &trace,
          &recorder, cli.profiler());
  const Run frozen = run(script, false, chunk, nullptr, nullptr, nullptr);

  bmp::util::Table table({"run", "worst survivor", "vs optimum", "stalled",
                          "corrupt dropped/accepted", "crashes detected"});
  const auto row = [&](const char* name, const Run& r) {
    table.add_row({name, bmp::util::Table::num(r.worst_rate, 2),
                   bmp::util::Table::num(r.worst_rate / optimum, 3),
                   bmp::util::Table::num(r.stalled),
                   bmp::util::Table::num(r.corrupt_dropped) + "/" +
                       bmp::util::Table::num(r.corrupt_accepted),
                   bmp::util::Table::num(r.crashes_detected)});
  };
  row("hardened", hardened);
  row("defenseless", frozen);
  table.print(std::cout);
  std::cout << "\nhardened run: " << hardened.crashes_detected
            << " crashes detected from telemetry silence, "
            << hardened.opens_deferred << " opens deferred through the "
            << "planner outage, " << hardened.stale_windows
            << " dark controller windows skipped (no blackout demotions)\n";
  std::cout << "SLO monitor: " << hardened.slo_pages << " pages, "
            << hardened.slo_warns << " warns"
            << (hardened.slo_ok_at_end ? ", ok at end\n" : "\n");

  bool ok = true;
  if (!hardened.slo_paged_in_storm) {
    ok = false;
    std::cout << "[FAIL] the SLO monitor never paged while the faults "
              << "were live\n";
  }
  if (!hardened.slo_ok_at_end) {
    ok = false;
    std::cout << "[FAIL] the SLO monitor did not return to ok after "
              << "the heal\n";
  }
  if (!hardened.violations.empty()) {
    ok = false;
    std::cout << "[FAIL] hardened validate():\n";
    for (const std::string& v : hardened.violations) {
      std::cout << "  " << v << "\n";
    }
  }
  if (hardened.stalled != 0) {
    ok = false;
    std::cout << "[FAIL] " << hardened.stalled
              << " survivors made no post-heal progress\n";
  }
  if (hardened.corrupt_accepted != 0) {
    ok = false;
    std::cout << "[FAIL] hardened run silently accepted "
              << hardened.corrupt_accepted << " corrupted chunks\n";
  }
  if (hardened.corrupt_dropped == 0) {
    ok = false;
    std::cout << "[FAIL] corruption was injected but never caught\n";
  }
  if (frozen.corrupt_accepted == 0) {
    ok = false;
    std::cout << "[FAIL] defenseless run accepted no corruption - "
              << "storm too gentle to prove anything\n";
  }

  if (!cli.trace.empty()) {
    std::cout << (trace.write(cli.trace) ? "trace written to "
                                         : "[WARN] could not write ")
              << cli.trace << " (" << trace.events() << " events)\n";
  }
  if (!dump_path.empty()) {
    std::cout << (recorder.dump(dump_path) ? "flight recorder dumped to "
                                           : "[WARN] could not write ")
              << dump_path << "\n";
  }
  if (!cli.metrics.empty()) {
    std::ofstream out(cli.metrics);
    out << hardened.prometheus;
    if (out) {
      std::cout << "metrics written to " << cli.metrics << "\n";
    } else {
      std::cout << "[WARN] could not write " << cli.metrics << "\n";
      ok = false;
    }
  }
  ok = cli.write_profile() && ok;
  std::cout << (ok ? "\nOK\n" : "\nFAILED\n");
  return ok ? 0 : 1;
}
