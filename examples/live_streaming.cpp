// Live-streaming scenario (the paper's §I motivation: CoolStreaming /
// PPLive / SplitStream-class systems): a swarm of peers with
// PlanetLab-like uplinks, most of them behind NATs, wants to watch a live
// stream at the best sustainable rate.
//
// Pipeline demonstrated:
//   platform -> optimal acyclic overlay (Thm 4.1)
//            -> broadcast-tree decomposition (§II.C)
//            -> randomized useful-piece streaming simulation (Massoulié)
//            -> per-peer quality report (rate, delay, TCP connections)
//            -> chunk-level execution (dataplane::) of the same overlay:
//               the planned rate, actually delivered chunk by chunk, then
//               stress-tested under packet loss and propagation latency.
#include <fstream>
#include <iostream>

#include "bmp/baselines/baselines.hpp"
#include "bmp/bmp.hpp"
#include "bmp/dataplane/execution.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/net/overlay.hpp"
#include "bmp/obs/export.hpp"
#include "bmp/runtime/metrics.hpp"
#include "bmp/sim/massoulie.hpp"
#include "bmp/trees/arborescence.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  // Shared observability CLI (benchutil::CommonCli): --json/--profile as
  // everywhere else, plus --metrics <path> for the final chunk-execution
  // counters and latency histogram in Prometheus exposition format.
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope example_scope(cli.profiler(), "example/live_streaming");
  using bmp::util::Table;
  bmp::util::Xoshiro256 rng(2026);

  // 30 peers, 70% NAT'd (typical residential swarm), PlanetLab-like uplinks.
  const bmp::Instance swarm = bmp::gen::random_instance(
      {/*size=*/30, /*p_open=*/0.3, bmp::gen::Dist::kPlanetLab}, rng);
  std::cout << "swarm: " << swarm.n() << " open peers, " << swarm.m()
            << " guarded peers, source uplink " << swarm.b(0) << " Mbit/s\n";

  const double t_star = bmp::cyclic_upper_bound(swarm);
  const bmp::AcyclicSolution sol = bmp::solve_acyclic(swarm);
  std::cout << "max stream rate: cyclic bound " << t_star << ", acyclic overlay "
            << sol.throughput << " Mbit/s ("
            << 100.0 * sol.throughput / t_star << "% of optimal)\n";

  // Materialize as TCP connection lists (QoS caps per connection).
  const bmp::net::Overlay overlay = bmp::net::Overlay::from_scheme(
      swarm, sol.scheme, bmp::net::Connectivity::from_instance(swarm));
  std::cout << "overlay: " << overlay.connections().size()
            << " TCP connections, max fan-out " << sol.scheme.max_out_degree()
            << " (SplitStream-class systems typically need k x this)\n\n";

  // §II.C decomposition: which data goes down which edge.
  const auto trees = bmp::trees::decompose_acyclic(sol.scheme, sol.throughput);
  std::cout << "stream split into " << trees.trees.size()
            << " weighted broadcast trees (sub-streams):\n";
  for (std::size_t k = 0; k < std::min<std::size_t>(4, trees.trees.size()); ++k) {
    std::cout << "  tree " << k << ": " << trees.trees[k].weight << " Mbit/s\n";
  }
  if (trees.trees.size() > 4) std::cout << "  ...\n";

  // Stream at 90% of the overlay capacity and measure per-peer quality.
  const double rate = 0.9 * sol.throughput;
  const bmp::sim::SimResult sim = bmp::sim::simulate_random_useful(
      sol.scheme, {rate / sol.throughput, 600.0, 150.0, 7, true});
  // (simulation uses normalized time: 1 piece == 1 throughput-second)

  Table t({"peer", "class", "uplink", "connections", "rate (norm)", "delay"});
  const int show = std::min(10, swarm.size() - 1);
  for (int i = 1; i <= show; ++i) {
    t.add_row({"C" + std::to_string(i),
               swarm.is_guarded(i) ? "guarded" : "open",
               Table::num(swarm.b(i), 1), Table::num(overlay.fan_out(i)),
               Table::num(sim.nodes[static_cast<std::size_t>(i)].rate, 3),
               Table::num(sim.nodes[static_cast<std::size_t>(i)].mean_delay, 1)});
  }
  t.print(std::cout);
  std::cout << "worst peer rate " << sim.min_rate << " of offered "
            << rate / sol.throughput << " (normalized)\n";

  // Compare with a SplitStream-like overlay on the same swarm.
  const auto ss = bmp::baselines::splitstream_like(swarm, 4, rng);
  std::cout << "\nSplitStream-like comparison: rate " << ss.throughput
            << " Mbit/s (" << 100.0 * ss.throughput / t_star
            << "% of optimal), max fan-out " << ss.scheme.max_out_degree()
            << "\n";

  // Chunk-level execution: stream 240 one-second chunks through the
  // planned overlay — every edge a rate-limited pipe, every peer a
  // rarest-first scheduler — and compare what each peer *achieved* against
  // the fluid rate the plan promises.
  bmp::dataplane::ExecutionConfig exec_config;
  exec_config.chunk_size = sol.throughput;  // 1 chunk = 1 stream-second
  exec_config.total_chunks = 240;
  exec_config.emission_rate = sol.throughput;
  exec_config.warmup_chunks = 48;
  exec_config.profiler = cli.profiler();
  exec_config.collect_latencies = !cli.metrics.empty();
  bmp::dataplane::Execution exec(swarm, sol.scheme, exec_config);
  exec.run_to_completion();
  const bmp::dataplane::ExecutionReport clean = exec.report(sol.throughput);
  std::cout << "\nchunk execution (lossless): achieved "
            << clean.achieved_rate << " of planned " << sol.throughput
            << " Mbit/s (stretch " << clean.stretch << "), worst buffer "
            << [&] {
                 int worst = 0;
                 for (const auto& node : clean.nodes) {
                   worst = std::max(worst, node.max_buffer);
                 }
                 return worst;
               }()
            << " chunks\n";

  // The same stream over a lossy WAN: 2% per-transmission loss, 30 ms
  // links. Retransmits burn upload the fluid model never accounted for.
  exec_config.loss_rate = 0.02;
  exec_config.latency = 0.03;
  bmp::dataplane::Execution wan(swarm, sol.scheme, exec_config);
  wan.run_to_completion();
  const bmp::dataplane::ExecutionReport noisy = wan.report(sol.throughput);
  std::cout << "chunk execution (2% loss, 30ms): achieved "
            << noisy.achieved_rate << " Mbit/s, " << noisy.retransmits
            << " retransmits, " << noisy.hol_stalls << " head-of-line stalls\n";

  bool ok = true;
  if (!cli.metrics.empty()) {
    bmp::runtime::MetricsRegistry metrics;
    metrics.set("dataplane.planned_rate", sol.throughput);
    metrics.set("dataplane.achieved_rate", clean.achieved_rate);
    metrics.set("dataplane.achieved_rate_lossy", noisy.achieved_rate);
    metrics.set_counter("dataplane.delivered_chunks",
                        static_cast<std::uint64_t>(clean.delivered_chunks));
    metrics.set_counter("dataplane.retransmits_lossy", noisy.retransmits);
    metrics.set_counter("dataplane.hol_stalls_lossy", noisy.hol_stalls);
    for (const double latency : exec.drain_latencies()) {
      metrics.observe("dataplane.chunk_latency", latency);
    }
    std::ofstream out(cli.metrics);
    out << bmp::obs::to_prometheus(metrics.snapshot());
    if (out) {
      std::cout << "metrics written to " << cli.metrics << "\n";
    } else {
      std::cout << "[WARN] could not write " << cli.metrics << "\n";
      ok = false;
    }
  }
  return bmp::benchutil::finish(cli, "live_streaming", ok);
}
