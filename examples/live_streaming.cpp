// Live-streaming scenario (the paper's §I motivation: CoolStreaming /
// PPLive / SplitStream-class systems): a swarm of peers with
// PlanetLab-like uplinks, most of them behind NATs, wants to watch a live
// stream at the best sustainable rate.
//
// Pipeline demonstrated:
//   platform -> optimal acyclic overlay (Thm 4.1)
//            -> broadcast-tree decomposition (§II.C)
//            -> randomized useful-piece streaming simulation (Massoulié)
//            -> per-peer quality report (rate, delay, TCP connections).
#include <iostream>

#include "bmp/baselines/baselines.hpp"
#include "bmp/bmp.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/net/overlay.hpp"
#include "bmp/sim/massoulie.hpp"
#include "bmp/trees/arborescence.hpp"
#include "bmp/util/table.hpp"

int main() {
  using bmp::util::Table;
  bmp::util::Xoshiro256 rng(2026);

  // 30 peers, 70% NAT'd (typical residential swarm), PlanetLab-like uplinks.
  const bmp::Instance swarm = bmp::gen::random_instance(
      {/*size=*/30, /*p_open=*/0.3, bmp::gen::Dist::kPlanetLab}, rng);
  std::cout << "swarm: " << swarm.n() << " open peers, " << swarm.m()
            << " guarded peers, source uplink " << swarm.b(0) << " Mbit/s\n";

  const double t_star = bmp::cyclic_upper_bound(swarm);
  const bmp::AcyclicSolution sol = bmp::solve_acyclic(swarm);
  std::cout << "max stream rate: cyclic bound " << t_star << ", acyclic overlay "
            << sol.throughput << " Mbit/s ("
            << 100.0 * sol.throughput / t_star << "% of optimal)\n";

  // Materialize as TCP connection lists (QoS caps per connection).
  const bmp::net::Overlay overlay = bmp::net::Overlay::from_scheme(
      swarm, sol.scheme, bmp::net::Connectivity::from_instance(swarm));
  std::cout << "overlay: " << overlay.connections().size()
            << " TCP connections, max fan-out " << sol.scheme.max_out_degree()
            << " (SplitStream-class systems typically need k x this)\n\n";

  // §II.C decomposition: which data goes down which edge.
  const auto trees = bmp::trees::decompose_acyclic(sol.scheme, sol.throughput);
  std::cout << "stream split into " << trees.trees.size()
            << " weighted broadcast trees (sub-streams):\n";
  for (std::size_t k = 0; k < std::min<std::size_t>(4, trees.trees.size()); ++k) {
    std::cout << "  tree " << k << ": " << trees.trees[k].weight << " Mbit/s\n";
  }
  if (trees.trees.size() > 4) std::cout << "  ...\n";

  // Stream at 90% of the overlay capacity and measure per-peer quality.
  const double rate = 0.9 * sol.throughput;
  const bmp::sim::SimResult sim = bmp::sim::simulate_random_useful(
      sol.scheme, {rate / sol.throughput, 600.0, 150.0, 7, true});
  // (simulation uses normalized time: 1 piece == 1 throughput-second)

  Table t({"peer", "class", "uplink", "connections", "rate (norm)", "delay"});
  const int show = std::min(10, swarm.size() - 1);
  for (int i = 1; i <= show; ++i) {
    t.add_row({"C" + std::to_string(i),
               swarm.is_guarded(i) ? "guarded" : "open",
               Table::num(swarm.b(i), 1), Table::num(overlay.fan_out(i)),
               Table::num(sim.nodes[static_cast<std::size_t>(i)].rate, 3),
               Table::num(sim.nodes[static_cast<std::size_t>(i)].mean_delay, 1)});
  }
  t.print(std::cout);
  std::cout << "worst peer rate " << sim.min_rate << " of offered "
            << rate / sol.throughput << " (normalized)\n";

  // Compare with a SplitStream-like overlay on the same swarm.
  const auto ss = bmp::baselines::splitstream_like(swarm, 4, rng);
  std::cout << "\nSplitStream-like comparison: rate " << ss.throughput
            << " Mbit/s (" << 100.0 * ss.throughput / t_star
            << "% of optimal), max fan-out " << ss.scheme.max_out_degree()
            << "\n";
  return 0;
}
