// Planning-engine demo: the library run as a *service* instead of a
// one-shot call. A Planner is fed a synthetic stream of overlay-planning
// requests (many near-duplicate platforms, as a live deployment would see),
// answered in one deduped, thread-parallel batch; then a long-lived Session
// absorbs a sequence of churn events with incremental repair.
//
// Usage:
//   engine_demo [platform.txt ...]
// With no arguments a synthetic fleet of random platforms is generated.
// Platform files use the src/net/instance_io.hpp text format.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bmp/bmp.hpp"
#include "bmp/engine/plan_cache.hpp"
#include "bmp/gen/generator.hpp"
#include "bmp/net/instance_io.hpp"
#include "bmp/util/rng.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bmp;
  benchutil::CommonCli cli(argc, argv);
  const obs::PhaseScope example_scope(cli.profiler(), "example/engine_demo");

  // 1. Collect base platforms: files from the command line, or synthetic.
  std::vector<Instance> platforms;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick" || arg == "--profile-wall") continue;
    if (arg == "--json" || arg == "--trace" || arg == "--profile" ||
        arg == "--metrics") {
      ++a;  // flag + value pair, consumed by CommonCli
      continue;
    }
    std::ifstream in(argv[a]);
    if (!in) {
      std::cerr << "cannot open " << argv[a] << "\n";
      return 1;
    }
    try {
      platforms.push_back(net::parse_platform(in).instance);
    } catch (const std::exception& e) {
      std::cerr << argv[a] << ": " << e.what() << "\n";
      return 1;
    }
    std::cout << "loaded " << argv[a] << ": " << platforms.back().n()
              << " open + " << platforms.back().m() << " guarded\n";
  }
  util::Xoshiro256 rng(2026);
  if (platforms.empty()) {
    gen::InstanceConfig config;
    config.size = 60;
    config.p_open = 0.4;
    for (int k = 0; k < 8; ++k) platforms.push_back(gen::random_instance(config, rng));
    std::cout << "generated " << platforms.size() << " synthetic platforms ("
              << config.size << " peers each)\n";
  }

  // 2. A request stream with heavy repetition: each request picks one of the
  //    base platforms and re-measures it with sub-bucket jitter, the way
  //    repeated LastMile estimates of the same platform would look.
  engine::PlannerConfig planner_config;
  planner_config.fingerprint_bucket = 1e-3;
  planner_config.profiler = cli.profiler();
  engine::Planner planner(planner_config);

  std::vector<engine::PlanRequest> stream;
  for (int r = 0; r < 200; ++r) {
    const Instance& base = platforms[rng.below(platforms.size())];
    std::vector<double> open, guarded;
    for (int i = 1; i <= base.n(); ++i) {
      open.push_back(base.b(i) + rng.uniform(-1e-5, 1e-5));
    }
    for (int i = base.n() + 1; i < base.size(); ++i) {
      guarded.push_back(base.b(i) + rng.uniform(-1e-5, 1e-5));
    }
    engine::PlanRequest request{Instance(base.b(0), open, guarded),
                                engine::Algorithm::kAuto, /*max_out_degree=*/8};
    stream.push_back(std::move(request));
  }

  const std::vector<engine::PlanResponse> responses = planner.plan_batch(stream);
  int hits = 0;
  double worst_ratio = 1.0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    hits += responses[i].cache_hit ? 1 : 0;
    const double ceiling = cyclic_upper_bound(stream[i].instance);
    if (ceiling > 0) {
      worst_ratio = std::min(worst_ratio, responses[i].throughput / ceiling);
    }
  }
  const engine::CacheStats stats = planner.cache_stats();
  std::cout << "\nplanned " << responses.size() << " requests: " << hits
            << " served without a fresh plan\n"
            << "cache: " << stats.hits << " hits / " << stats.misses
            << " misses / " << stats.evictions << " evictions ("
            << stats.size << " resident)\n"
            << "worst throughput vs cyclic ceiling: " << worst_ratio
            << " (unbounded-degree plans never fall below 5/7 by Theorem 6.2;"
               " the degree bound here may cost more)\n";

  // 3. A long-lived session riding out churn: peers leave in waves; the
  //    session repairs in place while it can and re-plans when it must.
  std::cout << "\nchurn session on platform 0 (design rate fixed reference):\n";
  engine::Session session(planner, platforms[0]);
  std::cout << "  initial rate " << session.design_rate() << "\n";
  for (int wave = 1; wave <= 5 && session.instance().size() > 4; ++wave) {
    const int peers = session.instance().size() - 1;
    std::vector<int> departed;
    for (int k = 0; k < std::max(1, peers / 10); ++k) {
      const int id = 1 + static_cast<int>(rng.below(peers));
      if (std::find(departed.begin(), departed.end(), id) == departed.end()) {
        departed.push_back(id);
      }
    }
    const engine::ChurnOutcome outcome = session.on_departure(departed);
    std::cout << "  wave " << wave << ": -" << outcome.departed << " peers, "
              << (outcome.full_replan ? "FULL replan" : "incremental repair")
              << ", rate " << outcome.achieved_rate << " (degraded was "
              << outcome.degraded_rate << ")\n";
  }
  std::cout << "  " << session.incremental_replans() << " incremental / "
            << session.full_replans() << " full replans\n";
  return benchutil::finish(cli, "engine_demo", true);
}
