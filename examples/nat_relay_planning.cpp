// Why the firewall constraint matters (§II.A): a planner that ignores
// NATs produces schemes with guarded->guarded edges that simply cannot be
// deployed. This example takes such a scheme, shows the overlay layer
// rejecting it, repairs it with explicit relays through open nodes — and
// then shows that the paper's firewall-aware algorithm beats the repaired
// scheme anyway, because relaying burns open bandwidth twice.
#include <iostream>
#include <vector>

#include "bmp/bmp.hpp"
#include "bmp/net/overlay.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope example_scope(cli.profiler(), "example/nat_relay_planning");
  using bmp::util::Table;

  // Platform: strong source, two open nodes, four guarded nodes.
  const bmp::Instance platform(8.0, {6.0, 4.0}, {5.0, 4.0, 2.0, 1.0});
  const double t_star = bmp::cyclic_upper_bound(platform);
  std::cout << "platform: n=2 open, m=4 guarded, cyclic bound T* = " << t_star
            << "\n\n";

  // --- A NAT-oblivious plan: pretend guarded nodes are open. ---
  // (Equivalent to solving on a platform where every node is open.)
  std::vector<double> all_open;
  for (int i = 1; i < platform.size(); ++i) all_open.push_back(platform.b(i));
  const bmp::Instance oblivious(platform.b(0), all_open, {});
  const double naive_T = bmp::acyclic_open_optimal(oblivious);
  const bmp::BroadcastScheme naive = bmp::build_acyclic_open(oblivious, naive_T);
  std::cout << "NAT-oblivious plan promises T = " << naive_T << "\n";

  // Deployment check: the oblivious scheme uses guarded->guarded edges.
  // (The oblivious instance sorts all peers together, so its node k maps
  // to the same bandwidth rank in `platform`.)
  const bmp::net::Connectivity nat =
      bmp::net::Connectivity::from_instance(platform);
  std::vector<bmp::net::RelayDemand> broken;
  for (int i = 0; i < platform.size(); ++i) {
    for (const auto& [to, rate] : naive.out_edges(i)) {
      if (platform.is_guarded(i) && platform.is_guarded(to)) {
        broken.push_back({i, to, rate});
      }
    }
  }
  std::cout << "deployment check: " << broken.size()
            << " guarded->guarded connections are unconnectable";
  try {
    bmp::net::Overlay::from_scheme(platform, naive, nat);
    std::cout << " (unexpectedly deployable?)\n";
  } catch (const std::invalid_argument& e) {
    std::cout << "\n  overlay layer rejects the plan: " << e.what() << "\n";
  }

  // --- Repair attempt: route the broken edges through open relays. ---
  // Relay budget = open nodes' uplink left over by the naive scheme.
  std::vector<int> relay_ids;
  std::vector<double> relay_budget;
  for (int i = 0; i <= platform.n(); ++i) {
    relay_ids.push_back(i);
    relay_budget.push_back(platform.b(i) - naive.out_rate(i));
  }
  const bmp::net::RelayPlan plan =
      bmp::net::plan_relays(broken, relay_ids, relay_budget);
  Table t({"relayed flow", "rate", "via"});
  for (const auto& route : plan.routes) {
    t.add_row({"C" + std::to_string(route.src) + " -> C" + std::to_string(route.dst),
               Table::num(route.rate, 3), "C" + std::to_string(route.relay)});
  }
  t.print(std::cout);
  std::cout << "relay plan " << (plan.feasible ? "feasible" : "INFEASIBLE")
            << ", extra open bandwidth burned: " << plan.relay_bandwidth_used
            << "\n\n";

  // --- The right way: plan with the firewall constraint from the start. ---
  const bmp::AcyclicSolution aware = bmp::solve_acyclic(platform);
  Table summary({"approach", "promised T", "deployable", "notes"});
  summary.add_row({"NAT-oblivious", Table::num(naive_T, 3), "no",
                   std::to_string(broken.size()) + " illegal edges"});
  summary.add_row(
      {"oblivious + relays",
       plan.feasible ? Table::num(naive_T, 3) + " (if budget held)" : "-",
       plan.feasible ? "yes" : "no",
       "burns " + Table::num(plan.relay_bandwidth_used, 2) + " relay bw"});
  summary.add_row({"firewall-aware (Thm 4.1)", Table::num(aware.throughput, 3),
                   "yes", "degree <= ceil(b/T)+3"});
  summary.print(std::cout);

  // The firewall-aware optimum is guaranteed deployable:
  const bmp::net::Overlay deployable =
      bmp::net::Overlay::from_scheme(platform, aware.scheme, nat);
  std::cout << "\nfirewall-aware overlay deploys with "
            << deployable.connections().size() << " connections; T = "
            << aware.throughput << " (" << 100.0 * aware.throughput / t_star
            << "% of the cyclic bound, >= 5/7 guaranteed)\n";
  return bmp::benchutil::finish(cli, "nat_relay_planning", true);
}
