// Quickstart: the 60-second tour of the public API.
//
//   1. Describe your platform (source + open + guarded nodes).
//   2. Ask for the optimal low-degree acyclic broadcast scheme (§IV).
//   3. Compare against the cyclic optimum (Lemma 5.1).
//   4. Verify the scheme and print the overlay.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "bmp/bmp.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope example_scope(cli.profiler(), "example/quickstart");
  // A small heterogeneous platform: a well-provisioned source, two open
  // nodes, three guarded (NAT'd) nodes — the paper's Figure 1 instance.
  const bmp::Instance platform(/*source_bw=*/6.0,
                               /*open_bw=*/{5.0, 5.0},
                               /*guarded_bw=*/{4.0, 1.0, 1.0});

  // Optimal cyclic throughput (closed form, Lemma 5.1) — the ceiling.
  const double t_star = bmp::cyclic_upper_bound(platform);
  std::cout << "optimal cyclic throughput  T*    = " << t_star << "\n";

  // Optimal acyclic scheme with low degrees (Theorem 4.1): dichotomic
  // search over GreedyTest + the Lemma 4.6 scheme builder.
  const bmp::AcyclicSolution solution = bmp::solve_acyclic(platform);
  std::cout << "optimal acyclic throughput T*_ac = " << solution.throughput
            << "  (" << 100.0 * solution.throughput / t_star
            << "% of T*, never below 5/7 by Theorem 6.2)\n";
  std::cout << "serving order word: " << bmp::to_string(solution.word) << "\n\n";

  // The scheme is a weighted overlay digraph; every node receives exactly
  // T*_ac and outdegrees stay within ceil(b_i/T)+2 (one node +3).
  std::cout << "overlay edges (sender -> receiver @ rate):\n";
  for (int i = 0; i < solution.scheme.num_nodes(); ++i) {
    for (const auto& [to, rate] : solution.scheme.out_edges(i)) {
      std::cout << "  C" << i << " -> C" << to << " @ " << rate << "\n";
    }
  }

  // Independent verification: throughput == min over nodes of
  // maxflow(source -> node), the paper's definition.
  std::cout << "\nverified throughput (min max-flow): "
            << bmp::flow::scheme_throughput(solution.scheme) << "\n";
  const auto issues = solution.scheme.validate(platform);
  std::cout << "constraint violations: " << issues.size() << "\n";

  // Open-only platforms can also use the cyclic construction (Thm 5.2),
  // which reaches min(b0, (b0+O)/n) — at most a 1/n improvement (Thm 6.1).
  const bmp::Instance open_only(10.0, {6.0, 6.0, 3.0}, {});
  const double t_cyc = bmp::cyclic_open_optimal(open_only);
  const bmp::BroadcastScheme cyclic = bmp::build_cyclic_open(open_only, t_cyc);
  std::cout << "\nopen-only example: acyclic "
            << bmp::acyclic_open_optimal(open_only) << " vs cyclic " << t_cyc
            << " (max degree " << cyclic.max_out_degree() << ")\n";
  return bmp::benchutil::finish(cli, "quickstart", true);
}
