// sharded_rollup — the telemetry-at-scale determinism demo.
//
// One deterministic workload is recorded twice: once into a single
// ShardRegistry, and once split across N per-shard registries that are
// rolled up through a RollupTree. Because every merge in the rollup layer
// is exact and commutative/associative (counter sums, min/max gauge
// reductions, bucket-wise sketch merges, top-K summary unions), the merged
// global snapshot must be BYTE-identical to the single-registry run — for
// every shard order and tree fanout. This binary asserts exactly that and
// exits non-zero on any mismatch; the runtime-smoke CI job runs it.
//
//   sharded_rollup [--shards N] [--events M] [--json]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bmp/obs/export.hpp"
#include "bmp/obs/rollup.hpp"

namespace {

struct Series {
  bmp::obs::ShardRegistry::CounterHandle delivered;
  bmp::obs::ShardRegistry::CounterHandle retransmits;
  bmp::obs::ShardRegistry::GaugeHandle alive;
  bmp::obs::ShardRegistry::GaugeHandle worst_ratio;
  bmp::obs::ShardRegistry::SketchHandle latency;
  bmp::obs::ShardRegistry::TopKHandle worst_nodes;
};

Series register_series(bmp::obs::ShardRegistry& reg) {
  Series s;
  s.delivered = reg.counter("dataplane.delivered");
  s.retransmits = reg.counter("dataplane.retransmits");
  s.alive = reg.gauge("population.alive", bmp::obs::GaugeReduction::kSum);
  s.worst_ratio =
      reg.gauge("slo.worst_ratio", bmp::obs::GaugeReduction::kMin);
  s.latency =
      reg.sketch("dataplane.chunk_latency", bmp::obs::SketchConfig{});
  s.worst_nodes = reg.topk("hot.node_retransmits", 16);
  return s;
}

/// Deterministic synthetic event stream. Everything recorded here depends
/// only on the event id, so splitting events across shards partitions the
/// exact same multiset the single registry sees.
void feed(bmp::obs::ShardRegistry& reg, const Series& s, int event) {
  reg.inc(s.delivered);
  if (event % 7 == 0) {
    reg.inc(s.retransmits);
    // 16 distinct keys against capacity 16: the space-saving summary never
    // evicts, so its counts are exact and the sharded union reproduces the
    // single registry byte for byte. (Past capacity the two are both valid
    // approximations but legitimately different ones — the union, having
    // seen narrower per-shard streams, is the tighter of the two.)
    reg.offer(s.worst_nodes, "node:" + std::to_string(event % 16));
  }
  reg.observe(s.latency, 0.001 * (event * 37 % 997 + 1));
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 8;
  int events = 20000;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::cerr << "usage: sharded_rollup [--shards N] [--events M] [--json]\n";
      return 1;
    }
  }
  if (shards < 1 || events < 1) {
    std::cerr << "sharded_rollup: --shards and --events must be >= 1\n";
    return 1;
  }

  // Reference: the whole stream into one registry. Gauges are set to what
  // the sharded reductions must reproduce: population sums across shards
  // (125 per shard — integral, so any summation grouping is exact), the
  // worst-ratio takes the fleet minimum.
  bmp::obs::ShardRegistry single;
  const Series single_series = register_series(single);
  for (int k = 0; k < events; ++k) feed(single, single_series, k);
  single.set(single_series.alive, 125.0 * shards);
  single.set(single_series.worst_ratio, 0.5);
  bmp::obs::RollupSnapshot reference = single.snapshot();
  reference.shards = shards;  // compare contents, not the shard count

  // Same stream, split across per-shard registries.
  std::vector<bmp::obs::ShardRegistry> fleet(
      static_cast<std::size_t>(shards));
  std::vector<Series> series;
  series.reserve(fleet.size());
  for (bmp::obs::ShardRegistry& reg : fleet) {
    series.push_back(register_series(reg));
  }
  for (int k = 0; k < events; ++k) {
    const auto shard = static_cast<std::size_t>(k % shards);
    feed(fleet[shard], series[shard], k);
  }
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    fleet[s].set(series[s].alive, 125.0);
    fleet[s].set(series[s].worst_ratio, 0.5 + 0.01 * static_cast<double>(s));
  }
  std::vector<bmp::obs::RollupSnapshot> snaps;
  snaps.reserve(fleet.size());
  for (const bmp::obs::ShardRegistry& reg : fleet) {
    snaps.push_back(reg.snapshot());
  }

  // Roll up under several orders and tree shapes; every result must match
  // the single-registry bytes.
  const std::string expected = reference.to_json();
  int failures = 0;
  const auto check = [&](const std::string& label,
                         const bmp::obs::RollupSnapshot& got) {
    const std::string actual = got.to_json();
    if (actual != expected) {
      ++failures;
      std::cerr << "MISMATCH [" << label << "]: rollup diverges from the "
                << "single-registry run (" << actual.size() << " vs "
                << expected.size() << " bytes)\n";
    } else {
      std::cout << "ok [" << label << "]\n";
    }
  };
  check("forward fold", bmp::obs::rollup(snaps));
  std::vector<bmp::obs::RollupSnapshot> reversed(snaps.rbegin(),
                                                 snaps.rend());
  check("reverse fold", bmp::obs::rollup(reversed));
  for (const int fanout : {2, 3}) {
    bmp::obs::RollupTree tree(fanout);
    for (const bmp::obs::RollupSnapshot& snap : snaps) tree.add(snap);
    check("tree fanout " + std::to_string(fanout), tree.global());
  }

  if (json) {
    std::cout << bmp::obs::to_json(reference) << "\n";
  } else {
    std::cout << reference.to_text();
  }
  if (failures != 0) {
    std::cerr << "sharded_rollup: " << failures << " rollup(s) diverged\n";
    return 2;
  }
  std::cout << "sharded_rollup: " << shards << " shards x " << events
            << " events rolled up byte-identical to the single registry\n";
  return 0;
}
