// Multi-channel runtime walkthrough: three live channels share one
// heterogeneous population's bounded multi-port upload budgets through the
// CapacityBroker, absorb a flash crowd, diurnal churn and a correlated
// failure, and get rebalanced by periodic capacity renegotiations. Prints
// the churn audit trail and the deterministic metrics snapshot.
#include <iostream>

#include "bmp/runtime/runtime.hpp"
#include "bmp/runtime/scenario.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope example_scope(cli.profiler(), "example/multi_channel");
  using namespace bmp::runtime;

  // A day-long (10 time units) scenario on ~60 heterogeneous peers.
  Scenario scenario(10.0, /*seed=*/42);
  scenario.source(400.0)
      .population({40, 0.7, bmp::gen::Dist::kUnif100})
      .population({20, 0.3, bmp::gen::Dist::kLogNormal1})
      .channel({0.0, -1.0, /*weight=*/2.0, /*fraction=*/0.45})
      .channel({0.5, -1.0, 1.0, 0.25})
      .channel({1.0, 8.0, 1.0, 0.2})
      .flash_crowd({3.0, 15, {0, 0.8, bmp::gen::Dist::kUnif100}, 0.6, 2.0})
      .diurnal_churn({5.0, 0.8, 6.0, 0.5, {0, 0.5, bmp::gen::Dist::kUnif100}})
      .correlated_failure({7.5, 0.15})
      .renegotiate_every(2.5, 0.95);
  const ScenarioScript script = scenario.build();

  RuntimeConfig config;
  config.broker_headroom = 0.05;
  config.profiler = cli.profiler();
  Runtime runtime(config, script.source_bandwidth, script.initial_peers);
  runtime.run(script.events);

  std::cout << "processed " << script.events.size() << " events, "
            << runtime.open_channels() << " channels live, "
            << runtime.alive_peers() << " peers alive\n\n";

  std::cout << "churn audit trail (channel, design, achieved):\n";
  for (const ChurnReport& report : runtime.churn_log()) {
    std::cout << "  t=" << report.time << " ch" << report.channel << " "
              << to_string(report.type) << " design=" << report.design_rate
              << " achieved=" << report.achieved_rate
              << (report.full_replan ? " [replan]" : " [repair]") << "\n";
  }

  const auto violations = runtime.validate();
  std::cout << "\ncapacity audit: "
            << (violations.empty() ? "every node within its multi-port budget"
                                   : "VIOLATIONS")
            << "\n";
  for (const auto& violation : violations) std::cout << "  " << violation << "\n";

  std::cout << "\nmetrics snapshot (deterministic view):\n"
            << runtime.metrics().snapshot().to_string(/*include_timing=*/false);
  return bmp::benchutil::finish(cli, "multi_channel", violations.empty());
}
