// The paper's full deployment pipeline (§II.C "Positioning"):
//
//   pairwise bandwidth measurements
//     -> LastMile model fit (Bedibe substitute, src/lastmile)
//     -> broadcast Instance
//     -> optimal low-degree acyclic overlay (Thm 4.1)
//     -> NAT-checked deployable overlay (src/net)
//     -> randomized streaming (Massoulié, src/sim)
//
// Ground truth is synthetic here, so we can report how every stage's error
// propagates to the delivered stream rate.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bmp/bmp.hpp"
#include "bmp/gen/distributions.hpp"
#include "bmp/lastmile/estimator.hpp"
#include "bmp/net/overlay.hpp"
#include "bmp/sim/massoulie.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope example_scope(cli.profiler(), "example/measurement_to_overlay");
  using bmp::util::Table;
  bmp::util::Xoshiro256 rng(404);
  const int N = 20;           // platform size (node 0 will be the source)
  const double noise = 0.05;  // 5% multiplicative measurement noise

  // --- Ground truth platform: heavy-tailed uplinks, ample downlinks. ---
  std::vector<double> out_true(N);
  std::vector<double> in_true(N);
  for (auto& b : out_true) b = bmp::gen::sample(bmp::gen::Dist::kPlanetLab, rng);
  out_true[0] = *std::max_element(out_true.begin(), out_true.end());
  for (auto& b : in_true) b = 2000.0;
  std::vector<bool> guarded(N, false);
  for (int i = 1; i < N; ++i) guarded[static_cast<std::size_t>(i)] = rng.uniform() < 0.5;

  // --- Stage 1: measure + fit the LastMile model. ---
  const bmp::lastmile::Matrix measurements =
      bmp::lastmile::synthesize_matrix(out_true, in_true, noise, rng);
  const bmp::lastmile::Estimate fit = bmp::lastmile::fit(measurements);
  std::cout << "LastMile fit: rmse " << fit.rmse << " after " << fit.iterations
            << " sweeps\n";

  // --- Stage 2: instantiate the broadcast problem from the estimate. ---
  const auto build_instance = [&](const std::vector<double>& out_bw) {
    std::vector<double> open;
    std::vector<double> guarded_bw;
    for (int i = 1; i < N; ++i) {
      (guarded[static_cast<std::size_t>(i)] ? guarded_bw : open)
          .push_back(out_bw[static_cast<std::size_t>(i)]);
    }
    return bmp::Instance(out_bw[0], open, guarded_bw);
  };
  const bmp::Instance estimated = build_instance(fit.out_bw);
  const bmp::Instance truth = build_instance(out_true);

  // --- Stage 3: plan on the estimate, evaluate on the truth. ---
  const bmp::AcyclicSolution plan = bmp::solve_acyclic(estimated);
  const double planned = plan.throughput;
  const double optimal = bmp::optimal_acyclic_throughput(truth);
  std::cout << "planned rate " << planned << " vs true optimum " << optimal
            << " (" << 100.0 * planned / optimal << "%)\n";

  // Deploy conservatively below the planned rate to absorb estimation
  // error, rebuilding the scheme at the deployed rate.
  const double deploy_rate = 0.92 * planned;
  const auto word = bmp::greedy_test(estimated, deploy_rate);
  if (!word.has_value()) {
    std::cerr << "deploy rate infeasible on the estimated instance\n";
    return 1;
  }
  const bmp::WordSchedule deployed =
      bmp::build_scheme_from_word(estimated, *word, deploy_rate);

  // --- Stage 4: NAT check + materialization. ---
  const bmp::net::Connectivity nat = bmp::net::Connectivity::from_instance(estimated);
  const bmp::net::Overlay overlay =
      bmp::net::Overlay::from_scheme(estimated, deployed.scheme, nat);
  std::cout << "overlay: " << overlay.connections().size()
            << " QoS-capped connections, max fan-out "
            << deployed.scheme.max_out_degree() << "\n";

  // --- Stage 5: does the TRUE platform sustain the deployed overlay? ---
  // Clamp each node's sending rate to its true uplink, then stream.
  bmp::BroadcastScheme realized(estimated.size());
  for (int i = 0; i < estimated.size(); ++i) {
    const double used = deployed.scheme.out_rate(i);
    // True uplink of this (sorted) node: map through original ids.
    const double truth_bw = truth.b(i);
    const double scale = used > truth_bw && used > 0.0 ? truth_bw / used : 1.0;
    for (const auto& [to, r] : deployed.scheme.out_edges(i)) {
      realized.add(i, to, r * scale);
    }
  }
  const double realized_rate = bmp::flow::scheme_throughput(realized);
  std::cout << "realized capacity on the true platform: " << realized_rate
            << " (deployed " << deploy_rate << ")\n";

  const bmp::sim::SimResult sim = bmp::sim::simulate_random_useful(
      realized, {0.95 * realized_rate / 1.0, 400.0, 100.0, 5, true});
  Table t({"stage", "value"});
  t.add_row({"true optimal rate", Table::num(optimal, 3)});
  t.add_row({"planned on estimate", Table::num(planned, 3)});
  t.add_row({"deployed (8% margin)", Table::num(deploy_rate, 3)});
  t.add_row({"realized capacity", Table::num(realized_rate, 3)});
  t.add_row({"worst simulated peer rate", Table::num(sim.min_rate, 3)});
  t.print(std::cout);
  std::cout << "end-to-end efficiency: "
            << 100.0 * sim.min_rate / optimal << "% of the true optimum\n";
  return bmp::benchutil::finish(cli, "measurement_to_overlay", true);
}
