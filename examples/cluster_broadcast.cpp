// HPC scenario (the paper's §I motivation: broadcasting input data to all
// workers): a federation of three clusters with heterogeneous NIC uplinks
// — no NATs here, so the open-only algorithms apply. We compare
// Algorithm 1 (acyclic), Theorem 5.2 (cyclic) and classic tree baselines
// on the time to broadcast a 40 GB dataset.
#include <iostream>
#include <vector>

#include "bmp/baselines/baselines.hpp"
#include "bmp/bmp.hpp"
#include "bmp/trees/arborescence.hpp"
#include "bmp/util/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  bmp::benchutil::CommonCli cli(argc, argv);
  const bmp::obs::PhaseScope example_scope(cli.profiler(), "example/cluster_broadcast");
  using bmp::util::Table;

  // Uplinks in Gbit/s: 8 fat nodes (25G), 24 mid nodes (10G), 32 thin
  // nodes (1G); the source sits on a 25G uplink.
  std::vector<double> uplinks;
  for (int i = 0; i < 8; ++i) uplinks.push_back(25.0);
  for (int i = 0; i < 24; ++i) uplinks.push_back(10.0);
  for (int i = 0; i < 32; ++i) uplinks.push_back(1.0);
  const bmp::Instance cluster(25.0, uplinks, {});
  std::cout << "federation: " << cluster.n() << " workers, total uplink "
            << cluster.open_sum() << " Gbit/s\n\n";

  const double dataset_gbit = 40.0 * 8.0;  // 40 GB
  const auto report = [&](const std::string& name, double throughput,
                          int max_degree) {
    return std::vector<std::string>{
        name, Table::num(throughput, 3),
        throughput > 0.0 ? Table::num(dataset_gbit / throughput, 1) + " s" : "-",
        Table::num(max_degree)};
  };

  Table t({"scheme", "rate (Gbit/s)", "40 GB broadcast", "max outdegree"});

  const double t_ac = bmp::acyclic_open_optimal(cluster);
  const bmp::BroadcastScheme acyclic = bmp::build_acyclic_open(cluster, t_ac);
  t.add_row(report("Algorithm 1 (acyclic optimal)", t_ac,
                   acyclic.max_out_degree()));

  const double t_cyc = bmp::cyclic_open_optimal(cluster);
  const bmp::BroadcastScheme cyclic = bmp::build_cyclic_open(cluster, t_cyc);
  t.add_row(report("Theorem 5.2 (cyclic optimal)", t_cyc,
                   cyclic.max_out_degree()));

  bmp::util::Xoshiro256 rng(11);
  for (const auto& baseline :
       {bmp::baselines::star(cluster), bmp::baselines::chain(cluster),
        bmp::baselines::best_kary_tree(cluster),
        bmp::baselines::random_mesh(cluster, 4, rng)}) {
    t.add_row(report(baseline.name, baseline.throughput,
                     baseline.scheme.max_out_degree()));
  }
  t.print(std::cout);

  std::cout << "\ncyclic gains " << 100.0 * (t_cyc / t_ac - 1.0)
            << "% over acyclic here (bounded by 1/(n-1) per Theorem 6.1: "
            << 100.0 / (cluster.n() - 1) << "%)\n";

  // The acyclic scheme decomposes into pipelined broadcast trees — this is
  // what a collective library would schedule chunks on.
  const auto trees = bmp::trees::decompose_acyclic(acyclic, t_ac);
  std::cout << "acyclic scheme = " << trees.trees.size()
            << " weighted broadcast trees; verified throughput "
            << bmp::flow::scheme_throughput(acyclic) << " Gbit/s\n";
  return bmp::benchutil::finish(cli, "cluster_broadcast", true);
}
